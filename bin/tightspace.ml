(* tightspace: command-line front end to the reproduction.

   Subcommands mirror the experiment families:
     witness    run the Zhu Theorem-1 adversary against a protocol
     check      bounded model-check a protocol's consensus properties
     jtt        run the perturbable-object covering adversary
     mutex      cost canonical mutual-exclusion executions
     encode     Fan-Lynch encoder/decoder round trip
     elect      run weak leader election under a random schedule
     multicore  run a protocol on real domains over atomics
     resilient  check t-resilient termination under crash-stop faults  *)
open Cmdliner
open Ts_model
open Ts_core
open Ts_protocols

let n_arg =
  Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let seed_arg =
  Arg.(value & opt int 2026 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

(* Name resolution is delegated to the catalog so the CLI, the analysis
   registry and the serve daemon agree on what every name means. *)
let protocol_of_name name n =
  match Catalog.find name ~n with
  | Ok p -> Ok p
  | Error m -> Error (`Msg m)

let protocol_arg =
  Arg.(value & opt string "racing"
       & info [ "protocol" ] ~docv:"NAME"
           ~doc:("Protocol: " ^ Catalog.names_doc () ^ "."))

(* Resource-guard flags shared by the search subcommands. *)
let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"SECS"
           ~doc:"Wall-clock budget; a tripped budget yields a partial result.")

let max_nodes_arg =
  Arg.(value & opt (some int) None
       & info [ "max-nodes" ] ~docv:"N"
           ~doc:"Search-node budget across the whole invocation.")

let budget_of ?deadline ?max_nodes () =
  match deadline, max_nodes with
  | None, None -> Budget.unlimited
  | _ -> Budget.create ?deadline ?max_nodes ()

module Obs = Ts_obs.Obs
module Obs_export = Ts_obs.Export

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Arm the engine's metrics registry for the run and print the \
                 counter/gauge/histogram summary afterwards.")

(* Run [f] with metrics armed when requested; the summary prints even if
   [f] raises (partial runs are exactly when the counters are interesting). *)
let with_metrics enabled f =
  if not enabled then f ()
  else begin
    Obs.Metrics.start ();
    Fun.protect f ~finally:(fun () ->
        Format.printf "@.engine metrics:@.%a@." Obs.Metrics.pp_snapshot
          (Obs.Metrics.stop ()))
  end

let json_arg =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Emit the machine-readable JSON document (the same \
                 serialization the serve daemon answers with) instead of \
                 human-readable text.")

let pr_json doc = print_endline (Ts_analysis.Json.to_string_pretty doc)

(* Long-running subcommands install this so an interrupt still yields the
   partial observability output the run accumulated.  [Fun.protect]
   finalizers do not run through [exit], so the flush lives in the handler
   itself. *)
let install_flush_handler ?flush () =
  Ts_service.Signals.install ~exit_after:true ~on_signal:(fun signo ->
      Format.eprintf "@.interrupted (%s); flushing partial output.@."
        (if signo = Sys.sigint then "SIGINT" else "SIGTERM");
      (match flush with Some f -> f () | None -> ());
      if Obs.Metrics.armed () then
        Format.eprintf "engine metrics (partial):@.%a@." Obs.Metrics.pp_snapshot
          (Obs.Metrics.snapshot ()))

(* Certificate emission for witness/check/resilient.  The artifact is
   self-checked through the independent micro-checker before it is
   written: shipping a certificate our own checker rejects would be a
   bug, not an answer.  Status goes to stderr so --json stdout stays a
   single document. *)
let write_certificate ~file cert =
  let s = Ts_cert.Cert.to_string cert in
  match Ts_cert.Cert.microcheck_string s with
  | Error e ->
    Format.eprintf "certificate self-check FAILED (nothing written): %s@." e;
    false
  | Ok () ->
    let oc = open_out_bin file in
    output_string oc s;
    close_out oc;
    Format.eprintf "certificate written to %s (%d bytes)@." file
      (String.length s);
    true

let certificate_arg =
  Arg.(value & opt (some string) None
       & info [ "certificate" ] ~docv:"FILE"
           ~doc:"Write a self-contained witness certificate (canonical JSON, \
                 independently checkable with $(b,tightspace certify)) to \
                 FILE.  Witness needs a complete construction; check and \
                 resilient need a violation.")

(* The two lower-bound engines, selectable wherever a space-bound witness
   is produced.  [lemmas] is the Lemma 1-4 / Theorem-1 construction,
   [revisionist] the revisionist-simulation engine, [both] runs the two
   and demands they agree. *)
module Rev = Ts_revisionist.Revisionist

let engine_conv =
  Arg.enum [ ("lemmas", `Lemmas); ("revisionist", `Revisionist); ("both", `Both) ]

let engine_arg =
  Arg.(value & opt engine_conv `Lemmas
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Lower-bound engine: $(b,lemmas) (the Lemma 1-4 \
                 construction), $(b,revisionist) (revisionist \
                 simulations), or $(b,both) (run the two and fail unless \
                 they agree on the bound).")

(* Run the Lemmas engine to an outcome: an explicit horizon is a promise
   (no escalation), the default escalates from 10n. *)
let lemmas_outcome ~budget ~horizon ~n proto =
  match horizon with
  | Some h ->
    let t = Valency.create ~budget proto ~horizon:h in
    Theorem.theorem1_outcome t, h
  | None -> Theorem.theorem1_escalate ~budget proto ~initial_horizon:(10 * n)

(* The revisionist sibling: --horizon doubles as the private-run
   allowance, same no-escalation promise when explicit. *)
let revisionist_outcome ~budget ~horizon ~n proto =
  match horizon with
  | Some h -> Rev.construct ~budget ~max_solo:h proto, h
  | None -> Rev.escalate ~budget proto ~initial_solo:(10 * n)

let witness_revisionist ~json ~certificate ~budget ~horizon ~n proto =
  match revisionist_outcome ~budget ~horizon ~n proto with
  | Rev.Complete cert, used ->
    let verified = Rev.verify cert proto in
    if json then
      pr_json
        (Ts_service.Response.revisionist_to_json ~max_solo_used:used ~verified
           cert)
    else begin
      Format.printf "%a@.(private-run allowance: %d)@." Rev.pp_certificate cert
        used;
      match verified with
      | Ok () -> Format.printf "independent replay: verified.@."
      | Error e -> Format.printf "replay FAILED: %s@." e
    end;
    let cert_ok =
      match certificate with
      | None -> true
      | Some file ->
        write_certificate ~file (Ts_cert.Cert.of_revisionist proto cert)
    in
    (match verified with Ok () when cert_ok -> 0 | _ -> 1)
  | Rev.Partial (stop, progress), used ->
    if json then
      pr_json
        (Ts_service.Response.revisionist_partial_to_json ~max_solo_used:used
           stop progress)
    else begin
      Format.printf "partial result: %a@.progress: %a@." Rev.pp_stop stop
        Rev.pp_progress progress;
      match stop with
      | Rev.Search_wall _ ->
        Format.printf
          "hint: raise --horizon beyond %d (or drop it to escalate automatically).@."
          used
      | Rev.Out_of_budget _ ->
        Format.printf "hint: raise --deadline / --max-nodes and rerun.@."
    end;
    if certificate <> None then
      Format.eprintf "no certificate: the construction was partial.@.";
    2

(* --engine both: run the two engines and diff the claims.  Exit 0 only
   when both constructions complete, both witnesses replay, and the
   bounds agree; 2 when either is partial; 1 on any divergence. *)
let witness_both ~json ~budget ~horizon ~n proto =
  let lem, lem_used = lemmas_outcome ~budget ~horizon ~n proto in
  let rev, rev_used = revisionist_outcome ~budget ~horizon ~n proto in
  match lem, rev with
  | Theorem.Complete lc, Rev.Complete rc ->
    let lv = Theorem.verify lc proto in
    let rv = Rev.verify rc proto in
    let agreement =
      match lv, rv with
      | Ok (), Ok () -> Outcome.agree (Outcome.of_theorem lc) (Rev.summary rc)
      | Error e, _ -> Error ("lemmas witness replay failed: " ^ e)
      | _, Error e -> Error ("revisionist witness replay failed: " ^ e)
    in
    if json then
      pr_json
        (Ts_analysis.Json.Obj
           [
             ("status", Ts_analysis.Json.Str "complete");
             ("lemmas",
              Ts_service.Response.witness_to_json ~horizon_used:lem_used
                ~verified:lv lc);
             ("revisionist",
              Ts_service.Response.revisionist_to_json ~max_solo_used:rev_used
                ~verified:rv rc);
             ("agreement",
              match agreement with
              | Ok bound ->
                Ts_analysis.Json.Obj
                  [
                    ("agreed", Ts_analysis.Json.Bool true);
                    ("bound", Ts_analysis.Json.Int bound);
                  ]
              | Error reason ->
                Ts_analysis.Json.Obj
                  [
                    ("agreed", Ts_analysis.Json.Bool false);
                    ("reason", Ts_analysis.Json.Str reason);
                  ]);
           ])
    else begin
      Format.printf "%a@.@.%a@.@." Theorem.pp_certificate lc Rev.pp_certificate
        rc;
      match agreement with
      | Ok bound -> Format.printf "engines agree: space bound %d.@." bound
      | Error reason -> Format.printf "engines DIVERGE: %s@." reason
    end;
    (match agreement with Ok _ -> 0 | Error _ -> 1)
  | _ ->
    let side name = function
      | `Done -> Format.printf "%s: complete.@." name
      | `Part reason -> Format.printf "%s: partial (%s).@." name reason
    in
    let lem_state =
      match lem with
      | Theorem.Complete _ -> `Done
      | Theorem.Partial (stop, _) ->
        `Part (Format.asprintf "%a" Theorem.pp_stop stop)
    in
    let rev_state =
      match rev with
      | Rev.Complete _ -> `Done
      | Rev.Partial (stop, _) ->
        `Part (Format.asprintf "%a" Rev.pp_stop stop)
    in
    if json then
      pr_json
        (Ts_analysis.Json.Obj
           [
             ("status", Ts_analysis.Json.Str "partial");
             ("lemmas",
              match lem with
              | Theorem.Complete _ -> Ts_analysis.Json.Str "complete"
              | Theorem.Partial (stop, p) ->
                Ts_service.Response.witness_partial_to_json
                  ~horizon_used:lem_used stop p);
             ("revisionist",
              match rev with
              | Rev.Complete _ -> Ts_analysis.Json.Str "complete"
              | Rev.Partial (stop, p) ->
                Ts_service.Response.revisionist_partial_to_json
                  ~max_solo_used:rev_used stop p);
           ])
    else begin
      side "lemmas" lem_state;
      side "revisionist" rev_state;
      Format.printf
        "no comparison: both constructions must complete; raise budgets and rerun.@."
    end;
    2

(* witness *)
let witness n horizon protocol diagram deadline max_nodes metrics json certificate engine =
  match protocol_of_name protocol n with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok (Protocol.Packed proto) ->
    with_metrics metrics @@ fun () ->
    let budget = budget_of ?deadline ?max_nodes () in
    match engine with
    | `Revisionist ->
      witness_revisionist ~json ~certificate ~budget ~horizon ~n proto
    | `Both ->
      if certificate <> None then begin
        prerr_endline
          "witness: --certificate needs a single engine; pick --engine lemmas or revisionist.";
        1
      end
      else witness_both ~json ~budget ~horizon ~n proto
    | `Lemmas ->
    let outcome, used = lemmas_outcome ~budget ~horizon ~n proto in
    (match outcome with
     | Theorem.Complete cert ->
       let verified = Theorem.verify cert proto in
       if json then
         pr_json
           (Ts_service.Response.witness_to_json ~horizon_used:used ~verified
              cert)
       else begin
         Format.printf "%a@.(oracle horizon: %d)@." Theorem.pp_certificate cert used;
         if diagram then
           Format.printf "@.%s@." (Diagram.render ~n cert.Theorem.trace);
         match verified with
         | Ok () -> Format.printf "independent replay: verified.@."
         | Error e -> Format.printf "replay FAILED: %s@." e
       end;
       let cert_ok =
         match certificate with
         | None -> true
         | Some file ->
           write_certificate ~file (Ts_cert.Cert.of_theorem proto cert)
       in
       (match verified with Ok () when cert_ok -> 0 | _ -> 1)
     | Theorem.Partial (stop, progress) ->
       if json then
         pr_json
           (Ts_service.Response.witness_partial_to_json ~horizon_used:used stop
              progress)
       else begin
         Format.printf "partial result: %a@.progress: %a@." Theorem.pp_stop stop
           Theorem.pp_progress progress;
         match stop with
         | Theorem.Horizon_wall _ ->
           Format.printf "hint: raise --horizon beyond %d (or drop it to escalate automatically).@." used
         | Theorem.Out_of_budget _ ->
           Format.printf "hint: raise --deadline / --max-nodes and rerun.@."
       end;
       if certificate <> None then
         Format.eprintf "no certificate: the construction was partial.@.";
       2
     | exception Failure msg ->
       if json then
         pr_json
           (Ts_service.Response.error ~id:None ~code:"construction-failed" msg)
       else Format.printf "construction failed: %s@." msg;
       1)

let horizon_arg =
  Arg.(value & opt (some int) None & info [ "horizon" ] ~docv:"H"
         ~doc:"Valency oracle search depth (lemmas) or private-run step \
               allowance (revisionist); default: escalate from 10n.")

let witness_cmd =
  let diagram =
    Arg.(value & flag & info [ "diagram" ] ~doc:"Render the witness as a space-time diagram.")
  in
  Cmd.v
    (Cmd.info "witness"
       ~doc:"Run a lower-bound adversary (Zhu Theorem-1 by default; select \
             with --engine)")
    Term.(const witness $ n_arg $ horizon_arg $ protocol_arg $ diagram
          $ deadline_arg $ max_nodes_arg $ metrics_arg $ json_arg
          $ certificate_arg $ engine_arg)

(* check: shared result reporting for the exploration subcommands.

   Exit codes (documented in the README table): 0 clean, 1 violation or
   worker error, 2 partial (budget tripped with no violation found — the
   verdict is evidence, not a proof, so scripts must be able to tell). *)
let explore_exit r =
  let open Ts_checker.Explore in
  match r.verdict with
  | Error _ -> 1
  | Ok () ->
    if r.worker_errors <> [] then 1 else if r.stopped <> None then 2 else 0

let report_explore ?(json = false) ?replay r =
  let replay_result = replay in
  (* the open below shadows [replay] with Explore's replay function *)
  let open Ts_checker.Explore in
  if json then
    pr_json (Ts_service.Response.explore_to_json ?replay:replay_result r)
  else begin
    List.iter
      (fun (idx, msg) ->
        Format.printf "worker error on input vector %d: %s@." idx msg)
      r.worker_errors;
    (match r.stopped with
     | Some b ->
       Format.printf "budget tripped (%a): verdict below is partial; raise --deadline / --max-nodes.@."
         Budget.pp_breach b
     | None -> ());
    match r.verdict with
    | Ok () ->
      let s = r.stats in
      Format.printf "clean: %d configurations explored (truncated: %b, deepest: %d)@."
        s.configs_explored s.truncated s.deepest
    | Error v -> Format.printf "VIOLATION: %a@." pp_violation v
  end;
  explore_exit r

let max_configs_arg =
  Arg.(value & opt int 60_000 & info [ "max-configs" ] ~doc:"Exploration cap.")

let max_depth_arg =
  Arg.(value & opt int 40 & info [ "max-depth" ] ~doc:"Depth cap.")

let domains_arg =
  Arg.(value & opt int 1
       & info [ "domains" ] ~docv:"D" ~doc:"Check input vectors on D domains.")

(* A violation is the only checkable claim these subcommands produce; a
   clean verdict is a bounded guarantee with no finite witness to
   certify. *)
let certify_violation ~certificate proto (r : Ts_checker.Explore.result) =
  match certificate with
  | None -> true
  | Some file -> (
    match r.Ts_checker.Explore.verdict with
    | Error v ->
      write_certificate ~file (Ts_cert.Cert.of_violation proto v)
    | Ok () ->
      Format.eprintf "no certificate: no violation was found.@.";
      true)

(* The optional space-bound appendix behind [check --engine]: run the
   selected lower-bound engine(s) after the property check and fold its
   exit code in.  Reuses the witness subcommand's reporting, so the
   appendix documents are the same shape [witness --json] emits. *)
let space_bound_pass ~json ~budget ~n proto = function
  | `Both -> witness_both ~json ~budget ~horizon:None ~n proto
  | `Revisionist ->
    witness_revisionist ~json ~certificate:None ~budget ~horizon:None ~n proto
  | `Lemmas -> (
    match lemmas_outcome ~budget ~horizon:None ~n proto with
    | Theorem.Complete c, used ->
      let v = Theorem.verify c proto in
      if json then
        pr_json
          (Ts_service.Response.witness_to_json ~horizon_used:used ~verified:v c)
      else begin
        Format.printf "%a@." Theorem.pp_certificate c;
        match v with
        | Ok () -> Format.printf "independent replay: verified.@."
        | Error e -> Format.printf "replay FAILED: %s@." e
      end;
      (match v with Ok () -> 0 | Error _ -> 1)
    | Theorem.Partial (stop, p), used ->
      if json then
        pr_json
          (Ts_service.Response.witness_partial_to_json ~horizon_used:used stop
             p)
      else
        Format.printf "space-bound pass partial: %a@." Theorem.pp_stop stop;
      2)

let check n protocol max_configs max_depth domains deadline max_nodes metrics json certificate engine =
  match protocol_of_name protocol n with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok (Protocol.Packed proto) ->
    install_flush_handler ();
    with_metrics metrics @@ fun () ->
    let r =
      Ts_checker.Explore.check_consensus proto ~domains
        ~budget:(budget_of ?deadline ?max_nodes ())
        ~inputs_list:(Ts_checker.Explore.binary_inputs n) ~max_configs ~max_depth
        ~solo_budget:300 ~check_solo:true
    in
    let cert_ok = certify_violation ~certificate proto r in
    let code = report_explore ~json r in
    let engine_code =
      match engine with
      | None -> 0
      | Some eng ->
        if not json then Format.printf "@.space-bound pass (--engine):@.";
        space_bound_pass ~json ~budget:(budget_of ?deadline ?max_nodes ()) ~n
          proto eng
    in
    if cert_ok then max code engine_code else 1

let check_engine_arg =
  Arg.(value & opt (some engine_conv) None
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Append a space-bound witness pass after the property check: \
                 $(b,lemmas), $(b,revisionist) or $(b,both) (which also \
                 diffs the two bounds and fails on divergence).  The pass \
                 prints its own document after the check's; the merged exit \
                 code is the worse of the two.  Without this flag the \
                 output is exactly the classic check's.")

let check_cmd =
  Cmd.v (Cmd.info "check" ~doc:"Bounded model-check a protocol")
    Term.(const check $ n_arg $ protocol_arg $ max_configs_arg $ max_depth_arg
          $ domains_arg $ deadline_arg $ max_nodes_arg $ metrics_arg $ json_arg
          $ certificate_arg $ check_engine_arg)

(* resilient *)
let resilient n t protocol max_configs max_depth domains deadline max_nodes metrics json certificate =
  match protocol_of_name protocol n with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok (Protocol.Packed proto) ->
    install_flush_handler ();
    with_metrics metrics @@ fun () ->
    let r =
      Ts_checker.Explore.check_t_resilient proto ~domains ~t
        ~budget:(budget_of ?deadline ?max_nodes ())
        ~inputs_list:(Ts_checker.Explore.binary_inputs n) ~max_configs ~max_depth
        ~solo_budget:300
    in
    let replay =
      match r.Ts_checker.Explore.verdict with
      (* a resilience witness must survive an independent replay *)
      | Error v -> Some (Ts_checker.Explore.replay proto v)
      | Ok () -> None
    in
    (match replay with
     | Some (Ok ()) when not json ->
       Format.printf "witness replayed independently: confirmed.@."
     | Some (Error e) when not json ->
       Format.printf "witness replay FAILED: %s@." e
     | _ -> ());
    let cert_ok = certify_violation ~certificate proto r in
    let code = report_explore ~json ?replay r in
    if cert_ok then code else 1

let resilient_cmd =
  let t =
    Arg.(value & opt int 1
         & info [ "t" ] ~docv:"T" ~doc:"Crash-fault tolerance to check (0 <= t <= n-1).")
  in
  Cmd.v
    (Cmd.info "resilient"
       ~doc:"Check t-resilient termination under crash-stop faults")
    Term.(const resilient $ n_arg $ t $ protocol_arg $ max_configs_arg
          $ max_depth_arg $ domains_arg $ deadline_arg $ max_nodes_arg
          $ metrics_arg $ json_arg $ certificate_arg)

(* jtt *)
let jtt n obj =
  let run =
    match obj with
    | "counter" -> Some Ts_perturb.Adversary.run_counter
    | "maxreg" -> Some Ts_perturb.Adversary.run_maxreg
    | "snapshot" -> Some Ts_perturb.Adversary.run_snapshot
    | _ -> None
  in
  match run with
  | None -> prerr_endline ("unknown object: " ^ obj); 1
  | Some run ->
    Format.printf "%a@." Ts_perturb.Adversary.pp_report (run ~n);
    0

let jtt_cmd =
  let obj =
    Arg.(value & opt string "counter"
         & info [ "object" ] ~docv:"OBJ" ~doc:"counter, maxreg or snapshot.")
  in
  Cmd.v (Cmd.info "jtt" ~doc:"Run the perturbable-object covering adversary")
    Term.(const jtt $ n_arg $ obj)

(* mutex *)
let mutex n alg contended =
  let packed =
    match alg with
    | "peterson" -> Some (Ts_mutex.Algorithm.Packed (Ts_mutex.Peterson.make ~n))
    | "tournament" -> Some (Ts_mutex.Algorithm.Packed (Ts_mutex.Tournament.make ~n))
    | "bakery" -> Some (Ts_mutex.Algorithm.Packed (Ts_mutex.Bakery.make ~n))
    | "tas" -> Some (Ts_mutex.Algorithm.Packed (Ts_mutex.Tas_lock.make ~n))
    | _ -> None
  in
  match packed with
  | None -> prerr_endline ("unknown algorithm: " ^ alg); 1
  | Some (Ts_mutex.Algorithm.Packed a) ->
    let o =
      if contended then Ts_mutex.Arena.contended a
      else Ts_mutex.Arena.serial a ~order:(Array.init n Fun.id)
    in
    Format.printf "%s n=%d: cost=%d accesses=%d steps=%d (FL bound nlog2n = %.0f)@."
      o.Ts_mutex.Arena.algorithm n o.Ts_mutex.Arena.cost o.Ts_mutex.Arena.accesses
      o.Ts_mutex.Arena.steps (Bounds.fan_lynch_cost n);
    Format.printf "CS order: %a@." Fmt.(Dump.list int) o.Ts_mutex.Arena.cs_order;
    0

let mutex_cmd =
  let alg =
    Arg.(value & opt string "tournament"
         & info [ "alg" ] ~docv:"ALG" ~doc:"peterson, bakery, tournament or tas.")
  in
  let contended =
    Arg.(value & flag & info [ "contended" ] ~doc:"Round-robin contention instead of serial.")
  in
  Cmd.v (Cmd.info "mutex" ~doc:"Cost a canonical mutual-exclusion execution")
    Term.(const mutex $ n_arg $ alg $ contended)

(* encode *)
let encode n seed =
  let alg = Ts_mutex.Tournament.make ~n in
  let order = Rng.permutation (Rng.create seed) n in
  let o = Ts_mutex.Arena.serial alg ~order in
  match Ts_encoder.Codec.round_trip alg o with
  | Ok enc ->
    Format.printf "order %a -> %d bits (entropy floor log2(n!) = %.1f); decoded OK@."
      Fmt.(Dump.list int) (Array.to_list order) (snd enc.Ts_encoder.Codec.bits)
      (Bounds.log2_factorial n);
    0
  | Error e ->
    Format.printf "round trip failed: %s@." e;
    1

let encode_cmd =
  Cmd.v (Cmd.info "encode" ~doc:"Fan-Lynch encoder/decoder round trip")
    Term.(const encode $ n_arg $ seed_arg)

(* elect *)
let elect n seed =
  let rng = Rng.create seed in
  let s = Ts_objects.Runner.create (Ts_leader.Election.make ~n) in
  for p = 0 to n - 1 do
    Ts_objects.Runner.invoke s p Ts_leader.Election.Elect
  done;
  let pending = ref (List.init n Fun.id) in
  let leader = ref None in
  while !pending <> [] do
    let p = List.nth !pending (Rng.int rng (List.length !pending)) in
    match Ts_objects.Runner.step s p with
    | `Returned v ->
      if Value.to_bool v then leader := Some p;
      pending := List.filter (fun q -> q <> p) !pending
    | `Continues -> ()
  done;
  (match !leader with
   | Some p -> Format.printf "leader: p%d (everyone else learned they lost)@." p
   | None -> Format.printf "BUG: no leader elected@.");
  if !leader = None then 1 else 0

let elect_cmd =
  Cmd.v (Cmd.info "elect" ~doc:"Weak leader election under a random schedule")
    Term.(const elect $ n_arg $ seed_arg)

(* multicore *)
let multicore n trials seed =
  let s =
    Ts_runtime.Atomic_run.run (Racing.make ~n) ~trials ~seed ~step_budget:1_000_000
      ~mixed_inputs:true
  in
  Format.printf "%a@." Ts_runtime.Atomic_run.pp_stats s;
  if s.Ts_runtime.Atomic_run.agreement_failures = 0 then 0 else 1

let multicore_cmd =
  let trials = Arg.(value & opt int 20 & info [ "trials" ] ~doc:"Number of trials.") in
  Cmd.v (Cmd.info "multicore" ~doc:"Run racing consensus on real domains")
    Term.(const multicore $ n_arg $ trials $ seed_arg)

(* kset *)
let kset n k seed =
  let proto = Kset.make ~n ~k in
  let rng = Rng.create seed in
  let inputs = Array.init n (fun _ -> Value.int (Rng.int rng 2)) in
  let o =
    Sim.run proto ~inputs ~policy:(Sim.Random rng) ~flips:(fun () -> Rng.bool rng)
      ~budget:2_000_000
  in
  let decided = List.sort_uniq Value.compare (List.map snd o.Sim.decisions) in
  Format.printf "inputs [%a]: %d processes decided %d distinct value(s) {%a} (k = %d)@."
    Fmt.(array ~sep:(any ";") Value.pp) inputs
    (List.length o.Sim.decisions) (List.length decided)
    Fmt.(list ~sep:comma Value.pp) decided k;
  if List.length decided <= k then 0 else 1

let kset_cmd =
  let k = Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"At most k distinct decisions.") in
  Cmd.v (Cmd.info "kset" ~doc:"Run partitioned k-set agreement")
    Term.(const kset $ n_arg $ k $ seed_arg)

(* multi *)
let multi n bits seed =
  let proto = Multivalued.make ~n ~bits in
  let rng = Rng.create seed in
  let inputs = Array.init n (fun _ -> Value.int (Rng.int rng (1 lsl bits))) in
  let o =
    Sim.run proto ~inputs ~policy:(Sim.Random rng) ~flips:(fun () -> Rng.bool rng)
      ~budget:3_000_000
  in
  (match Sim.agreement o with
   | Ok v ->
     Format.printf "inputs [%a] -> agreed on %a (%d-bit values, %d registers)@."
       Fmt.(array ~sep:(any ";") Value.pp) inputs Value.pp v bits
       proto.Protocol.num_registers;
     0
   | Error vs ->
     Format.printf "DISAGREEMENT: %a@." Fmt.(Dump.list Value.pp) vs;
     1)

let multi_cmd =
  let bits = Arg.(value & opt int 3 & info [ "bits" ] ~docv:"B" ~doc:"Input width in bits.") in
  Cmd.v (Cmd.info "multi" ~doc:"Run multivalued consensus (bit-by-bit reduction)")
    Term.(const multi $ n_arg $ bits $ seed_arg)

(* dot *)
let dot_out n depth file =
  let proto = Racing.make ~n in
  let t = Valency.create proto ~horizon:(30 * n) in
  let inputs = Array.init n (fun p -> Value.int (if p = 1 then 1 else 0)) in
  let dot, stats =
    Valgraph.dot t ~inputs ~pset:(Pset.all n) ~depth ~max_nodes:5_000
  in
  let oc = open_out file in
  output_string oc dot;
  close_out oc;
  Format.printf
    "wrote %s: %d configurations, %d edges (%d bivalent, %d 0-univalent, %d 1-univalent)@."
    file stats.Valgraph.nodes stats.Valgraph.edges stats.Valgraph.bivalent
    stats.Valgraph.univalent0 stats.Valgraph.univalent1;
  0

let dot_cmd =
  let depth = Arg.(value & opt int 10 & info [ "depth" ] ~docv:"D" ~doc:"Exploration depth.") in
  let file =
    Arg.(value & opt string "valency.dot" & info [ "o" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v (Cmd.info "dot" ~doc:"Export the valency-annotated configuration graph (Graphviz)")
    Term.(const dot_out $ n_arg $ depth $ file)

(* cover *)
let cover n alg budget =
  let packed =
    match alg with
    | "peterson" -> Some (Ts_mutex.Algorithm.Packed (Ts_mutex.Peterson.make ~n))
    | "tournament" -> Some (Ts_mutex.Algorithm.Packed (Ts_mutex.Tournament.make ~n))
    | "bakery" -> Some (Ts_mutex.Algorithm.Packed (Ts_mutex.Bakery.make ~n))
    | "tas" -> Some (Ts_mutex.Algorithm.Packed (Ts_mutex.Tas_lock.make ~n))
    | _ -> None
  in
  match packed with
  | None -> prerr_endline ("unknown algorithm: " ^ alg); 1
  | Some (Ts_mutex.Algorithm.Packed a) ->
    Format.printf "%a@." Ts_mutex.Covering_search.pp_report
      (Ts_mutex.Covering_search.search a ~max_configs:budget);
    0

(* trace *)
let trace_run n horizon protocol out metrics deadline max_nodes =
  match protocol_of_name protocol n with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok (Protocol.Packed proto) ->
    let budget = budget_of ?deadline ?max_nodes () in
    Obs.start_tracing ();
    if metrics then Obs.Metrics.start ();
    (* an interrupted trace run still writes the spans gathered so far —
       a partial trace of a stuck search is the most useful trace of all *)
    install_flush_handler ()
      ~flush:(fun () ->
        if Obs.tracing () then begin
          let events = Obs.stop_tracing () in
          let oc = open_out out in
          output_string oc (Obs_export.chrome_trace events);
          close_out oc;
          Format.eprintf "wrote partial trace to %s (%d events).@." out
            (List.length events)
        end);
    (* Capture construction failures so a failed run still exports the
       spans recorded up to the failure point. *)
    let outcome =
      match
        match horizon with
        | Some h ->
          let t = Valency.create ~budget proto ~horizon:h in
          Theorem.theorem1_outcome t
        | None ->
          fst (Theorem.theorem1_escalate ~budget proto ~initial_horizon:(10 * n))
      with
      | o -> Ok o
      | exception Failure msg -> Error msg
    in
    let events = Obs.stop_tracing () in
    let oc = open_out out in
    output_string oc (Obs_export.chrome_trace events);
    close_out oc;
    print_string (Obs_export.phase_table events);
    Format.printf
      "@.wrote %s (%d events); load it in chrome://tracing or https://ui.perfetto.dev@."
      out (List.length events);
    if metrics then
      Format.printf "@.engine metrics:@.%a@." Obs.Metrics.pp_snapshot
        (Obs.Metrics.stop ());
    (match outcome with
     | Ok (Theorem.Complete _) ->
       Format.printf "@.theorem 1 construction complete.@."; 0
     | Ok (Theorem.Partial (stop, _)) ->
       Format.printf
         "@.partial run traced (%a): the spans cover the work done before the budget tripped.@."
         Theorem.pp_stop stop;
       2
     | Error msg -> Format.printf "@.construction failed: %s@." msg; 1)

let trace_cmd =
  let protocol_pos =
    Arg.(value & pos 0 string "racing"
         & info [] ~docv:"PROTOCOL"
             ~doc:"Protocol to trace (same names as --protocol elsewhere).")
  in
  let out =
    Arg.(value & opt string "trace.json"
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Chrome trace_event JSON output file.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run the Theorem-1 adversary with span tracing armed and export \
             the phase breakdown plus a Chrome/Perfetto trace")
    Term.(const trace_run $ n_arg $ horizon_arg $ protocol_pos $ out
          $ metrics_arg $ deadline_arg $ max_nodes_arg)

(* analyze *)
let analyze all protocol json domains certify crosscheck =
  let module A = Ts_analysis.Analyze in
  let pr_json j =
    print_endline (Ts_analysis.Json.to_string_pretty j)
  in
  let base =
    if all then begin
      let o = A.analyze_all ~domains () in
      if json then pr_json (A.overall_to_json o)
      else Format.printf "%a@." A.pp_overall o;
      if o.A.ok then 0 else 1
    end
    else
      match protocol with
      | None ->
        if certify || crosscheck then 0
        else begin
          prerr_endline
            "analyze: pass --all, --protocol NAME, --certify or --crosscheck";
          2
        end
      | Some name ->
        (match Ts_analysis.Registry.find name with
         | None ->
           Printf.eprintf "analyze: unknown protocol %s (known: %s)\n" name
             (String.concat ", " (Ts_analysis.Registry.names ()));
           2
         | Some entry ->
           let r = A.analyze ~domains entry in
           if json then pr_json (A.report_to_json r)
           else Format.printf "%a@." A.pp_report r;
           (* single-protocol mode gates on the protocol itself: flagged means
              defective, whatever the registry expected *)
           if r.A.flagged then 1 else 0)
  in
  let certified =
    if not certify then 0
    else begin
      let module C = Ts_analysis.Certify in
      let r = C.run ~domains () in
      if json then pr_json (C.report_to_json r)
      else Format.printf "%a@." C.pp_report r;
      if r.C.ok then 0 else 1
    end
  in
  let crosschecked =
    if not crosscheck then 0
    else begin
      let module X = Ts_analysis.Crosscheck in
      let r = X.run ~domains () in
      if json then pr_json (X.report_to_json r)
      else Format.printf "%a@." X.pp_report r;
      if r.X.ok then 0 else 1
    end
  in
  (* with several passes requested, any one failing fails the gate *)
  max base (max certified crosschecked)

let analyze_cmd =
  let all =
    Arg.(value & flag
         & info [ "all" ]
             ~doc:"Analyze every registered protocol and certify the parallel \
                   engine race-free (the CI gate).")
  in
  let protocol =
    Arg.(value & opt (some string) None
         & info [ "protocol" ] ~docv:"NAME" ~doc:"Analyze a single registered protocol.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.") in
  let certify =
    Arg.(value & flag
         & info [ "certify" ]
             ~doc:"Run the gating certificate pass: harvest every registry \
                   entry's witnesses, demand the independent micro-checker \
                   and the engine replay accept each one, and demand every \
                   tampered variant is rejected.")
  in
  let crosscheck =
    Arg.(value & flag
         & info [ "crosscheck" ]
             ~doc:"Run the gating two-engine cross-check: both lower-bound \
                   engines over every registry entry, demanding identical \
                   bounds and accepted witnesses where agreement is \
                   expected, and demanding the planted divergence fixture \
                   is caught.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the static analyzers: footprint lint, determinism checker, \
             bounded property pass, engine race detector, certificate gate, \
             two-engine cross-check")
    Term.(const analyze $ all $ protocol $ json $ domains_arg $ certify
          $ crosscheck)

let cover_cmd =
  let alg =
    Arg.(value & opt string "peterson" & info [ "alg" ] ~docv:"ALG" ~doc:"peterson, bakery, tournament or tas.")
  in
  let budget = Arg.(value & opt int 100_000 & info [ "budget" ] ~doc:"Configuration cap.") in
  Cmd.v (Cmd.info "cover" ~doc:"Search a lock's state space for covering configurations (BL93)")
    Term.(const cover $ n_arg $ alg $ budget)

(* serve *)
module Server = Ts_service.Server

(* --fsync grammar: "always", "never" or a positive interval in seconds *)
let fsync_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "always" -> Ok Ts_store.Store.Always
    | "never" -> Ok Ts_store.Store.Never
    | s -> (
      match float_of_string_opt s with
      | Some f when f > 0. -> Ok (Ts_store.Store.Interval f)
      | _ -> Error (`Msg "expected always, never or a positive interval in seconds"))
  in
  let print ppf = function
    | Ts_store.Store.Always -> Format.pp_print_string ppf "always"
    | Ts_store.Store.Never -> Format.pp_print_string ppf "never"
    | Ts_store.Store.Interval f -> Format.fprintf ppf "%g" f
  in
  Arg.conv (parse, print)

let serve host port workers queue_cap cache_capacity cache_shards deadline
    max_nodes store_path store_fsync verbose =
  let config =
    {
      Server.host;
      port;
      workers;
      queue_cap;
      cache_capacity;
      cache_shards;
      request_deadline = deadline;
      max_nodes;
      store_path;
      store_fsync;
      retry_after_overloaded_ms =
        Server.default_config.Server.retry_after_overloaded_ms;
      retry_after_draining_ms =
        Server.default_config.Server.retry_after_draining_ms;
      verbose;
    }
  in
  match Server.start config with
  | exception Unix.Unix_error (err, _, _) ->
    Format.eprintf "serve: cannot listen on %s:%d: %s@." host port
      (Unix.error_message err);
    1
  | exception Failure msg ->
    Format.eprintf "serve: %s@." msg;
    1
  | server ->
    (* machine-parseable: the CI smoke and the load generator scrape this *)
    Printf.printf "tightspace serve: listening on %s:%d (%d workers, queue %d, cache %d%s)\n%!"
      host (Server.port server) workers queue_cap cache_capacity
      (match store_path with Some p -> ", store " ^ p | None -> "");
    Ts_service.Signals.install ~exit_after:false ~on_signal:(fun signo ->
        Printf.eprintf "tightspace serve: %s received; draining...\n%!"
          (if signo = Sys.sigint then "SIGINT" else "SIGTERM");
        Server.request_stop server);
    (* idle in interruptible sleeps rather than blocking in a join, so the
       signal handler gets its safe point promptly *)
    let rec idle () =
      if not (Server.stopping server) then begin
        (try Unix.sleepf 0.2
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        idle ()
      end
    in
    idle ();
    Server.wait server;
    Format.printf "%a@." Server.pp_summary (Server.summary server);
    0

let serve_cmd =
  let host =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let port =
    Arg.(value & opt int 7433
         & info [ "port" ] ~docv:"PORT" ~doc:"TCP port; 0 picks an ephemeral one.")
  in
  let workers =
    Arg.(value & opt int 4
         & info [ "workers" ] ~docv:"W"
             ~doc:"Worker domains (max concurrent connections).")
  in
  let queue_cap =
    Arg.(value & opt int 64
         & info [ "queue-cap" ] ~docv:"Q"
             ~doc:"Accepted-connection queue bound; beyond it new connections \
                   are refused with an overloaded error (backpressure).")
  in
  let cache_capacity =
    Arg.(value & opt int 4096
         & info [ "cache-capacity" ] ~docv:"C" ~doc:"Result-cache entries.")
  in
  let cache_shards =
    Arg.(value & opt int 8
         & info [ "cache-shards" ] ~docv:"S" ~doc:"Result-cache LRU shards.")
  in
  let deadline =
    Arg.(value & opt (some float) (Some 30.)
         & info [ "deadline" ] ~docv:"SECS"
             ~doc:"Default per-request wall-clock budget (requests may carry \
                   their own).")
  in
  let store =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"PATH"
             ~doc:"Persist complete answers to the append-only witness log at \
                   PATH and recover previously-seen answers from it on start.")
  in
  let fsync =
    Arg.(value & opt fsync_conv Ts_store.Store.Always
         & info [ "fsync" ] ~docv:"POLICY"
             ~doc:"Store durability: always (fsync every append), never, or a \
                   positive interval in seconds.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Log lifecycle events.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the adversary-query daemon: event-loop request handling, \
             worker-pool scheduling, sharded LRU result cache, optional \
             persistent witness store")
    Term.(const serve $ host $ port $ workers $ queue_cap $ cache_capacity
          $ cache_shards $ deadline $ max_nodes_arg $ store $ fsync $ verbose)

(* query *)
let query host port opname protocol n horizon seed max_configs max_depth
    solo_budget t_faults deadline max_nodes id raw retries timeout_ms
    certificate =
  let module C = Ts_service.Client in
  match raw with
  | Some bytes -> (
    (* deliberately unframed bytes: the probe succeeds when the daemon
       answers with a well-formed error document instead of dying *)
    match C.connect ~host ~port () with
    | Error msg ->
      Printf.eprintf "query: cannot reach %s:%d: %s\n" host port msg;
      1
    | Ok c ->
      Fun.protect
        ~finally:(fun () -> C.close c)
        (fun () ->
          C.send_raw c bytes;
          match C.recv c with
          | Ok doc -> pr_json doc; 0
          | Error msg -> Printf.eprintf "query: %s\n" msg; 1))
  | None -> (
    match Ts_service.Request.op_of_string opname with
    | None ->
      Printf.eprintf "query: unknown op %s (witness, check, resilient, valency, analyze, ping, stats, health)\n"
        opname;
      2
    | Some op ->
      let req =
        {
          Ts_service.Request.defaults with
          id;
          op;
          protocol;
          n;
          horizon;
          seed;
          max_configs;
          max_depth;
          solo_budget;
          t_faults;
          certificate;
          deadline;
          max_nodes;
        }
      in
      let policy =
        { C.default_policy with attempts = retries + 1; timeout_ms }
      in
      let client = C.make ~host ~policy ~port () in
      Fun.protect
        ~finally:(fun () -> C.shutdown client)
        (fun () ->
          match C.call client (Ts_service.Request.to_json req) with
          | Error msg ->
            (* the retry budget (including retries=0, a single attempt) is
               spent: exit 4, distinct from a protocol-level refusal *)
            Printf.eprintf "query: %s\n" msg;
            4
          | Ok doc ->
            pr_json doc;
            (match Ts_analysis.Json.member "ok" doc with
             | Some (Ts_analysis.Json.Bool true) -> 0
             | _ -> 1)))

let query_cmd =
  let host =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"ADDR" ~doc:"Daemon address.")
  in
  let port =
    Arg.(value & opt int 7433 & info [ "port" ] ~docv:"PORT" ~doc:"Daemon port.")
  in
  let op =
    Arg.(value & pos 0 string "ping"
         & info [] ~docv:"OP"
             ~doc:"Operation: witness, check, resilient, valency, analyze, \
                   ping or stats.")
  in
  let solo_budget =
    Arg.(value & opt int 300 & info [ "solo-budget" ] ~doc:"Solo-run step cap.")
  in
  let t_faults =
    Arg.(value & opt int 1
         & info [ "t" ] ~docv:"T" ~doc:"Crash-fault tolerance for resilient.")
  in
  let id =
    Arg.(value & opt int 0 & info [ "id" ] ~docv:"ID" ~doc:"Correlation id echoed by the daemon.")
  in
  let raw =
    Arg.(value & opt (some string) None
         & info [ "raw" ] ~docv:"BYTES"
             ~doc:"Send BYTES verbatim (no framing) and print the daemon's \
                   error response — the malformed-input probe.")
  in
  let retries =
    Arg.(value & opt int 4
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry a failed request up to N times (transport faults \
                   and retryable refusals; exponential backoff).  0 means a \
                   single attempt.  Exit 4 when the budget is exhausted.")
  in
  let timeout_ms =
    Arg.(value & opt int 10_000
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Per-attempt deadline in milliseconds; 0 disables it.")
  in
  let certificate =
    Arg.(value & flag
         & info [ "certificate" ]
             ~doc:"Ask the daemon to embed a witness certificate in the \
                   answer (witness, check and resilient; cache-key \
                   material, so certified and plain answers are distinct \
                   cache entries).")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Send one request to a running serve daemon and print the \
             response document")
    Term.(const query $ host $ port $ op $ protocol_arg $ n_arg $ horizon_arg
          $ seed_arg $ max_configs_arg $ max_depth_arg $ solo_budget $ t_faults
          $ deadline_arg $ max_nodes_arg $ id $ raw $ retries $ timeout_ms
          $ certificate)

(* certify: the independent micro-checker as a standalone subcommand.
   Deliberately bypasses ts_cert's engine-side validation: this is the
   auditor's path, and it must work from the certificate bytes alone. *)
let certify_files files json =
  let module J = Ts_analysis.Json in
  let check_file f =
    match In_channel.with_open_bin f In_channel.input_all with
    | exception Sys_error msg -> `Unreadable msg
    | bytes -> (
      match Ts_microcheck.Microcheck.check_string bytes with
      | Ok () -> `Valid
      | Error e -> `Rejected e)
  in
  let results = List.map (fun f -> (f, check_file f)) files in
  if json then
    pr_json
      (J.List
         (List.map
            (fun (f, r) ->
              J.Obj
                [
                  ("file", J.Str f);
                  ("verdict",
                   J.Str
                     (match r with
                      | `Valid -> "valid"
                      | `Rejected _ -> "rejected"
                      | `Unreadable _ -> "unreadable"));
                  ("detail",
                   match r with
                   | `Valid -> J.Null
                   | `Rejected e | `Unreadable e -> J.Str e);
                ])
            results))
  else
    List.iter
      (fun (f, r) ->
        match r with
        | `Valid -> Format.printf "%s: valid@." f
        | `Rejected e -> Format.printf "%s: REJECTED (%s)@." f e
        | `Unreadable e -> Format.printf "%s: unreadable (%s)@." f e)
      results;
  if List.exists (fun (_, r) -> match r with `Unreadable _ -> true | _ -> false)
       results
  then 2
  else if
    List.exists (fun (_, r) -> match r with `Rejected _ -> true | _ -> false)
      results
  then 3
  else 0

let certify_cmd =
  let files =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"FILE" ~doc:"Certificate files (canonical JSON).")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:"Check witness certificates with the independent stdlib-only \
             micro-checker (exit 3 if any certificate is rejected, 2 if a \
             file cannot be read)")
    Term.(const certify_files $ files $ json_arg)

(* crosscheck: run both lower-bound engines over the registry and diff
   their answers.  Full-run exit gates on the report (every expectation
   met, at least one agreement); single-protocol exit gates on the
   agreement itself: 0 agreed, 1 diverged, 2 nothing to compare. *)
let crosscheck protocol json domains deadline metrics =
  let module X = Ts_analysis.Crosscheck in
  let pr_json j = print_endline (Ts_analysis.Json.to_string_pretty j) in
  with_metrics metrics @@ fun () ->
  match protocol with
  | Some name -> (
      match Ts_analysis.Registry.find name with
      | None ->
          Printf.eprintf "crosscheck: unknown protocol %S\n" name;
          2
      | Some e ->
          let row = X.run_entry ?deadline e in
          if json then pr_json (X.row_to_json row)
          else Format.printf "%a@." X.pp_row row;
          (match row.X.verdict with
          | X.Agreed _ -> 0
          | X.Diverged _ -> 1
          | X.Unavailable _ -> 2))
  | None ->
      let r = X.run ~domains ?deadline () in
      if json then pr_json (X.report_to_json r)
      else Format.printf "%a@." X.pp_report r;
      if r.X.ok then 0 else 1

let crosscheck_cmd =
  let protocol =
    Arg.(value & opt (some string) None
         & info [ "protocol" ] ~docv:"NAME"
             ~doc:"Cross-check a single registry protocol instead of the \
                   whole registry.  Exit gates on the diff itself: 0 when \
                   the engines agree, 1 when they diverge, 2 when there is \
                   nothing to compare.")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"Per-engine wall-clock budget for each protocol \
                   (default 15 s); a stuck construction degrades to a \
                   recorded partial rather than hanging the gate.")
  in
  Cmd.v
    (Cmd.info "crosscheck"
       ~doc:"Run both lower-bound engines — the Lemma 1-4 construction and \
             the revisionist-simulation engine — over every registry \
             protocol and diff their answers: identical space bounds, both \
             witnesses replayed and certified.  Exits 0 only when every \
             expected agreement holds and the planted divergence fixture \
             is caught.")
    Term.(const crosscheck $ protocol $ json_arg $ domains_arg $ deadline
          $ metrics_arg)

(* store: offline inspection of a witness log *)

(* --audit: replay every recovered record's embedded certificate through
   the independent micro-checker.  A record whose answer carries no
   certificate is reported but does not fail the audit (plain cached
   answers are legitimate); a certificate the checker rejects does. *)
let audit_store st =
  let module S = Ts_store.Store in
  let module J = Ts_analysis.Json in
  let keys = ref [] in
  S.iter st (fun k _ -> keys := k :: !keys);
  List.rev_map
    (fun k ->
      let verdict =
        match S.find st k with
        | None -> Error "indexed record unreadable"
        | Some value -> (
          match J.of_string value with
          | Error e -> Error ("stored answer is not JSON: " ^ e)
          | Ok doc -> (
            match J.member "certificate" doc with
            | None -> Ok `Nocert
            | Some cert -> (
              match
                Ts_microcheck.Microcheck.check_string (J.to_string cert)
              with
              | Ok () -> Ok `Pass
              | Error e -> Error e)))
      in
      (k, verdict))
    !keys

let store_inspect path json keys audit =
  let module S = Ts_store.Store in
  match S.open_ ~fsync:S.Never path with
  | Error msg ->
    Printf.eprintf "store: %s\n" msg;
    2
  | Ok st ->
    Fun.protect
      ~finally:(fun () -> S.close st)
      (fun () ->
        let s = S.stats st in
        let audit_results = if audit then Some (audit_store st) else None in
        if json then begin
          let module J = Ts_analysis.Json in
          let key_list =
            if not keys then []
            else begin
              let acc = ref [] in
              S.iter st (fun k vlen ->
                  acc :=
                    J.Obj
                      [
                        ("key", J.Str (Ts_model.Ckey.to_hex k));
                        ("value_bytes", J.Int vlen);
                      ]
                    :: !acc);
              [ ("keys", J.List (List.rev !acc)) ]
            end
          in
          let audit_list =
            match audit_results with
            | None -> []
            | Some results ->
              [ ("audit",
                 J.List
                   (List.map
                      (fun (k, verdict) ->
                        J.Obj
                          [
                            ("key", J.Str (Ts_model.Ckey.to_hex k));
                            ("verdict",
                             J.Str
                               (match verdict with
                                | Ok `Pass -> "pass"
                                | Ok `Nocert -> "no-certificate"
                                | Error _ -> "fail"));
                            ("detail",
                             match verdict with
                             | Ok _ -> J.Null
                             | Error e -> J.Str e);
                          ])
                      results)) ]
          in
          pr_json
            (J.Obj
               ([
                  ("path", J.Str (S.path st));
                  ("version", J.Int S.store_version);
                  ("stats", Ts_service.Response.store_stats_to_json s);
                ]
               @ key_list @ audit_list))
        end
        else begin
          Format.printf "witness log %s (format v%d)@.%a@." (S.path st)
            S.store_version S.pp_stats s;
          if keys then
            S.iter st (fun k vlen ->
                Format.printf "  %s  %d bytes@." (Ts_model.Ckey.to_hex k) vlen);
          match audit_results with
          | None -> ()
          | Some results ->
            let pass = ref 0 and nocert = ref 0 and fail = ref 0 in
            List.iter
              (fun (k, verdict) ->
                match verdict with
                | Ok `Pass ->
                  incr pass;
                  Format.printf "  %s  certificate pass@."
                    (Ts_model.Ckey.to_hex k)
                | Ok `Nocert ->
                  incr nocert;
                  Format.printf "  %s  no certificate@."
                    (Ts_model.Ckey.to_hex k)
                | Error e ->
                  incr fail;
                  Format.printf "  %s  certificate FAIL: %s@."
                    (Ts_model.Ckey.to_hex k) e)
              results;
            Format.printf "audit: %d pass, %d without certificate, %d fail@."
              !pass !nocert !fail
        end;
        let audit_failed =
          match audit_results with
          | None -> false
          | Some results ->
            List.exists
              (fun (_, verdict) -> Result.is_error verdict)
              results
        in
        (* a truncation performed during this open is worth a loud exit:
           the log was damaged, even though it is now repaired — as is a
           recovered answer whose certificate no longer checks out *)
        if s.S.torn_truncations > 0 || audit_failed then 1 else 0)

let store_cmd =
  let path =
    Arg.(value & pos 0 string "witness.log"
         & info [] ~docv:"PATH" ~doc:"The witness log file to inspect.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.") in
  let keys =
    Arg.(value & flag
         & info [ "keys" ] ~doc:"List every stored cache key and its answer size.")
  in
  let audit =
    Arg.(value & flag
         & info [ "audit" ]
             ~doc:"Replay every recovered record's embedded certificate \
                   through the independent micro-checker; exit 1 if any \
                   certificate is rejected.")
  in
  Cmd.v
    (Cmd.info "store"
       ~doc:"Inspect a persistent witness log: record counts, recovery \
             status, stored keys, certificate audit (exit 1 if a torn tail \
             was truncated or an audited certificate fails)")
    Term.(const store_inspect $ path $ json $ keys $ audit)

(* chaos: the fault-injection layer as a CLI — a standalone seeded proxy
   to put in front of a serve daemon, and the store crash-torture loop *)
module Chaos = Ts_service.Chaos

let chaos_proxy listen_port upstream_host upstream_port seed fault_prob
    class_spec max_delay_ms verbose =
  match Chaos.classes_of_string class_spec with
  | Error msg ->
    Printf.eprintf "chaos proxy: %s\n" msg;
    2
  | Ok classes -> (
    let config =
      {
        Chaos.listen_host = "127.0.0.1";
        listen_port;
        upstream_host;
        upstream_port;
        seed;
        fault_prob;
        classes;
        max_delay_ms;
        verbose;
      }
    in
    match Chaos.start config with
    | exception Unix.Unix_error (err, _, _) ->
      Printf.eprintf "chaos proxy: cannot listen on 127.0.0.1:%d: %s\n"
        listen_port (Unix.error_message err);
      1
    | proxy ->
      (* machine-parseable, like serve's banner: harnesses scrape the port *)
      Printf.printf
        "tightspace chaos proxy: listening on 127.0.0.1:%d -> %s:%d (seed \
         %d, fault-prob %.2f, classes %s)\n%!"
        (Chaos.port proxy) upstream_host upstream_port seed fault_prob
        (Chaos.classes_to_string classes);
      let stop = Atomic.make false in
      Ts_service.Signals.install ~exit_after:false ~on_signal:(fun signo ->
          Printf.eprintf "tightspace chaos proxy: %s received; stopping...\n%!"
            (if signo = Sys.sigint then "SIGINT" else "SIGTERM");
          Atomic.set stop true);
      let rec idle () =
        if not (Atomic.get stop) then begin
          (try Unix.sleepf 0.2
           with Unix.Unix_error (Unix.EINTR, _, _) -> ());
          idle ()
        end
      in
      idle ();
      Chaos.stop proxy;
      Format.printf "%a@." Chaos.pp_stats (Chaos.stats proxy);
      0)

let chaos_torture path iterations seed fsync json verbose =
  let module T = Ts_store.Torture in
  match T.run ?fsync ~seed ~iterations ~path () with
  | Error msg ->
    Printf.eprintf "chaos torture: INVARIANT VIOLATED: %s\n" msg;
    1
  | Ok r ->
    if json then print_endline (T.report_to_json r)
    else Format.printf "%a@." T.pp_report r;
    if verbose then
      Printf.eprintf "chaos torture: replay with --seed %d --iterations %d\n"
        seed iterations;
    0

let chaos_cmd =
  let seed default_seed =
    Arg.(value & opt int default_seed
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Master seed; the whole run replays exactly from it.")
  in
  let proxy_cmd =
    let listen_port =
      Arg.(value & opt int 0
           & info [ "port" ] ~docv:"PORT"
               ~doc:"Listen port; 0 picks an ephemeral one (printed in the \
                     banner).")
    in
    let upstream_host =
      Arg.(value & opt string "127.0.0.1"
           & info [ "upstream-host" ] ~docv:"ADDR" ~doc:"Daemon address.")
    in
    let upstream_port =
      Arg.(value & opt int 7433
           & info [ "upstream-port" ] ~docv:"PORT"
               ~doc:"The serving daemon to relay to.")
    in
    let fault_prob =
      Arg.(value & opt float 0.6
           & info [ "fault-prob" ] ~docv:"P"
               ~doc:"Probability an accepted connection draws a faulty plan; \
                     the rest relay verbatim.")
    in
    let classes =
      Arg.(value & opt string "all"
           & info [ "classes" ] ~docv:"SPEC"
               ~doc:"Comma-separated fault classes to enable: reset, \
                     truncate, corrupt, delay, throttle (or all, none).")
    in
    let max_delay =
      Arg.(value & opt int 25
           & info [ "max-delay-ms" ] ~docv:"MS"
               ~doc:"Injected latency is uniform in [1, MS].")
    in
    let verbose =
      Arg.(value & flag
           & info [ "verbose" ] ~doc:"Log every injected fault as it fires.")
    in
    Cmd.v
      (Cmd.info "proxy"
         ~doc:"Run a seeded fault-injecting TCP proxy in front of a serve \
               daemon: latency, throttling, mid-frame resets, truncation, \
               detectable corruption — until SIGINT, then print fault stats")
      Term.(const chaos_proxy $ listen_port $ upstream_host $ upstream_port
            $ seed 2026 $ fault_prob $ classes $ max_delay $ verbose)
  in
  let torture_cmd =
    let path =
      Arg.(value & opt string "chaos-torture.log"
           & info [ "path" ] ~docv:"PATH"
               ~doc:"Log file to torture (removed first; scratch space).")
    in
    let iterations =
      Arg.(value & opt int 300
           & info [ "iterations" ] ~docv:"N"
               ~doc:"Crash/reopen cycles to run.")
    in
    let fsync =
      Arg.(value & opt (some fsync_conv) None
           & info [ "fsync" ] ~docv:"POLICY"
               ~doc:"Pin the durability policy (always, never, interval \
                     seconds); by default each iteration draws one from the \
                     seed so every policy faces every crash class.")
    in
    let json =
      Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")
    in
    let verbose =
      Arg.(value & flag
           & info [ "verbose" ] ~doc:"Print the replay command line.")
    in
    Cmd.v
      (Cmd.info "torture"
         ~doc:"Crash-torture the witness store: hundreds of seeded \
               append/crash/reopen cycles verifying the recovery contract \
               (exit 1 with iteration and seed on any violation)")
      Term.(const chaos_torture $ path $ iterations $ seed 2026 $ fsync
            $ json $ verbose)
  in
  Cmd.group
    (Cmd.info "chaos"
       ~doc:"Fault injection: a seeded chaos proxy for the daemon and \
             crash-torture for the witness store")
    [ proxy_cmd; torture_cmd ]

(* cluster: the sharded multi-node search (docs/CLUSTER.md).

   [cluster worker] is one shard-holding node; [cluster coordinate]
   drives a set of them through the level-synchronous BFS and prints the
   result document — byte-identical to the serial engine's, which is why
   the CI smoke can diff it against [tightspace check --json] directly. *)

let cluster_worker host port verbose =
  let module W = Ts_cluster.Worker in
  match W.start { W.host; port; verbose } with
  | exception Unix.Unix_error (err, _, _) ->
    Format.eprintf "cluster worker: cannot listen on %s:%d: %s@." host port
      (Unix.error_message err);
    1
  | server ->
    let stopping = ref false in
    Ts_service.Signals.install ~exit_after:false ~on_signal:(fun signo ->
        Printf.eprintf "cluster worker: %s received; draining...\n%!"
          (if signo = Sys.sigint then "SIGINT" else "SIGTERM");
        stopping := true;
        W.request_stop server);
    (* same interruptible-idle discipline as serve: short sleeps give the
       signal handler its safe point promptly *)
    let rec idle () =
      if not !stopping then begin
        (try Unix.sleepf 0.2
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        idle ()
      end
    in
    idle ();
    W.wait server;
    0

let cluster_coordinate opname protocol n k t_faults max_configs max_depth
    horizon shards steal_threshold chunk deadline restarts worker_specs
    store_path fsync json verbose =
  let module Coord = Ts_cluster.Coord in
  let module Json_ = Ts_analysis.Json in
  let peer_of_spec wid spec =
    match String.rindex_opt spec ':' with
    | None -> Error (Printf.sprintf "%s: expected HOST:PORT" spec)
    | Some i -> (
      let host = String.sub spec 0 i in
      let port_s = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port_s with
      | Some port when port > 0 && host <> "" ->
        Ok (Coord.tcp_peer ~wid ~host ~port ())
      | _ -> Error (Printf.sprintf "%s: expected HOST:PORT" spec))
  in
  let op =
    match opname with
    | "check" -> Ok Coord.Check
    | "resilient" -> Ok Coord.Resilient
    | "valency" -> Ok Coord.Valency
    | other -> Error other
  in
  match op with
  | Error other ->
    Format.eprintf
      "cluster coordinate: unknown op %s (check, resilient, valency)@." other;
    2
  | Ok op -> (
    let params =
      {
        Coord.default_params with
        op;
        protocol;
        n;
        k;
        t_faults;
        max_configs;
        max_depth;
        horizon;
        shards;
        steal_threshold;
        chunk;
        deadline;
      }
    in
    let exit_of_result doc =
      (* explore docs carry a verdict; valency docs are classifications
         and any complete one is a success *)
      match Json_.member "verdict" doc with
      | Some (Json_.Str "violation") -> 1
      | _ -> 0
    in
    let report_result ?provenance doc =
      if json then pr_json doc
      else begin
        (match provenance with
         | Some p -> Format.printf "cluster: %s@." p
         | None -> ());
        (match Json_.member "verdict" doc, Json_.member "class" doc with
         | Some (Json_.Str v), _ -> Format.printf "cluster verdict: %s@." v
         | _, Some (Json_.Str c) -> Format.printf "cluster valency: %s@." c
         | _ -> pr_json doc)
      end;
      exit_of_result doc
    in
    let store =
      match store_path with
      | None -> Ok None
      | Some path -> (
        match Ts_store.Store.open_ ~fsync path with
        | Ok st -> Ok (Some st)
        | Error msg -> Error msg)
    in
    match store with
    | Error msg ->
      Format.eprintf "cluster coordinate: store: %s@." msg;
      1
    | Ok store -> (
      Fun.protect
        ~finally:(fun () -> Option.iter Ts_store.Store.close store)
      @@ fun () ->
      let key = Coord.store_key params in
      let cached =
        match store with
        | None -> None
        | Some st -> Ts_store.Store.find st key
      in
      match cached with
      | Some value -> (
        match Json_.of_string value with
        | Ok doc ->
          report_result
            ~provenance:"answer recovered from store (no workers contacted)"
            doc
        | Error msg ->
          Format.eprintf "cluster coordinate: stored answer unreadable: %s@."
            msg;
          1)
      | None -> (
        let peers, bad =
          List.fold_left
            (fun (peers, bad) spec ->
              match peer_of_spec (List.length peers) spec with
              | Ok p -> (p :: peers, bad)
              | Error e -> (peers, e :: bad))
            ([], []) worker_specs
        in
        match bad with
        | _ :: _ ->
          List.iter
            (fun e -> Format.eprintf "cluster coordinate: %s@." e)
            (List.rev bad);
          2
        | [] -> (
          let peers = List.rev peers in
          match Coord.run ~restarts params ~peers with
          | Coord.Complete { result; telemetry } ->
            (match store with
             | Some st ->
               ignore
                 (Ts_store.Store.append st ~key
                    ~value:(Json_.to_string result))
             | None -> ());
            if verbose then
              Format.eprintf "cluster telemetry:@.%s@."
                (Json_.to_string_pretty telemetry);
            report_result result
          | Coord.Failed f ->
            let doc = Coord.failure_to_json f in
            if json then pr_json doc
            else
              Format.eprintf
                "cluster: PARTIAL (%s): %d worker(s) dead, %d shard(s) lost \
                 after %d rounds; rerun with --restarts or fresh workers.@.%s@."
                (match f.Coord.reason with
                 | `Dead_workers -> "dead workers"
                 | `Deadline -> "deadline")
                (List.length f.Coord.dead)
                (List.length f.Coord.lost_shards)
                f.Coord.completed_rounds
                (Json_.to_string_pretty doc);
            (* 4 = retries exhausted against remote peers, same meaning as
               [query]'s exhausted exit; distinct from 2 (partial budget) *)
            4))))

let cluster_cmd =
  let worker_cmd =
    let host =
      Arg.(value & opt string "127.0.0.1"
           & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
    in
    let port =
      Arg.(value & opt int 4401
           & info [ "port" ] ~docv:"PORT"
               ~doc:"TCP port; 0 picks an ephemeral one.")
    in
    let verbose =
      Arg.(value & flag & info [ "verbose" ] ~doc:"Log per-request activity.")
    in
    Cmd.v
      (Cmd.info "worker"
         ~doc:"Run one cluster worker node: holds a subset of the shards, \
               answers the coordinator's ingest/expand/steal frames, and \
               drains cleanly on SIGINT/SIGTERM")
      Term.(const cluster_worker $ host $ port $ verbose)
  in
  let coordinate_cmd =
    let opname =
      Arg.(value & pos 0 string "check"
           & info [] ~docv:"OP" ~doc:"Operation: check, resilient or valency.")
    in
    let k =
      Arg.(value & opt int 1
           & info [ "k" ] ~docv:"K" ~doc:"Set-agreement parameter (check).")
    in
    let t =
      Arg.(value & opt int 1
           & info [ "t" ] ~docv:"T" ~doc:"Crash-fault budget (resilient).")
    in
    let horizon =
      Arg.(value & opt (some int) None
           & info [ "horizon" ] ~docv:"H"
               ~doc:"Valency search horizon (default 10n).")
    in
    let shards =
      Arg.(value & opt int 8
           & info [ "shards" ] ~docv:"S"
               ~doc:"Shard count for the key partition; the answer is \
                     shard-count independent.")
    in
    let steal_threshold =
      Arg.(value & opt int 64
           & info [ "steal-threshold" ] ~docv:"N"
               ~doc:"Migrate a shard to an idle worker only when some worker \
                     holds at least N pending candidates over two or more \
                     shards.")
    in
    let chunk =
      Arg.(value & opt int 256
           & info [ "chunk" ] ~docv:"C"
               ~doc:"Max candidates per wire frame; keep the per-frame \
                     engine work under the peer RPC timeout.")
    in
    let restarts =
      Arg.(value & opt int 0
           & info [ "restarts" ] ~docv:"R"
               ~doc:"On a worker death, retry the whole request from scratch \
                     on the survivors up to R times.")
    in
    let workers =
      Arg.(non_empty & opt_all string []
           & info [ "worker" ] ~docv:"HOST:PORT"
               ~doc:"A worker node to drive (repeatable; shard ownership is \
                     assigned round-robin over the given order).")
    in
    let store =
      Arg.(value & opt (some string) None
           & info [ "store" ] ~docv:"PATH"
               ~doc:"Answer witness-log tier: recover a previously-computed \
                     answer from PATH without contacting any worker, and \
                     persist fresh complete answers to it.")
    in
    let fsync =
      Arg.(value & opt fsync_conv Ts_store.Store.Always
           & info [ "fsync" ] ~docv:"POLICY"
               ~doc:"Store durability: always, never, or an interval in \
                     seconds.")
    in
    let verbose =
      Arg.(value & flag
           & info [ "verbose" ]
               ~doc:"Print the merged per-worker telemetry to stderr.")
    in
    Cmd.v
      (Cmd.info "coordinate"
         ~doc:"Drive a set of cluster workers through one distributed \
               search and print the result document (byte-identical to the \
               serial engine's); exit 0 clean, 1 violation, 4 partial \
               (worker death or blown deadline)")
      Term.(const cluster_coordinate $ opname $ protocol_arg $ n_arg $ k $ t
            $ max_configs_arg $ max_depth_arg $ horizon $ shards
            $ steal_threshold $ chunk $ deadline_arg $ restarts $ workers
            $ store $ fsync $ json_arg $ verbose)
  in
  Cmd.group
    (Cmd.info "cluster"
       ~doc:"Sharded multi-node search: worker nodes and the coordinator \
             (operator's handbook: docs/CLUSTER.md)")
    [ worker_cmd; coordinate_cmd ]

let () =
  let doc = "executable reproduction of 'A Tight Space Bound for Consensus'" in
  let info = Cmd.info "tightspace" ~version:"1.0.0" ~doc in
  (* Last-resort guard: engine exceptions that slip past a subcommand must
     surface as an actionable message and a nonzero exit, never as a raw
     backtrace. *)
  let code =
    try
      Cmd.eval'
        (Cmd.group info
           [
             witness_cmd; check_cmd; resilient_cmd; jtt_cmd; mutex_cmd;
             encode_cmd; elect_cmd; multicore_cmd; kset_cmd; multi_cmd;
             dot_cmd; cover_cmd; analyze_cmd; certify_cmd; crosscheck_cmd;
             trace_cmd; serve_cmd; query_cmd; store_cmd; chaos_cmd;
             cluster_cmd;
           ])
    with
    | Valency.Horizon_exceeded msg ->
      Format.eprintf
        "tightspace: oracle horizon too small: %s@.hint: raise --horizon (or drop it to let the engine escalate).@."
        msg;
      3
    | Budget.Exhausted b ->
      Format.eprintf
        "tightspace: resource budget tripped (%a).@.hint: raise --deadline / --max-nodes and rerun.@."
        Budget.pp_breach b;
      3
    | Invalid_argument msg ->
      Format.eprintf
        "tightspace: invalid arguments: %s@.hint: check -n, --t, --k and the chosen --protocol fit together.@."
        msg;
      2
  in
  exit code
