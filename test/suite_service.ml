(* The ts_service daemon: wire framing, the JSON reader, worker-pool
   scheduling, signal plumbing, and — end to end over real loopback TCP —
   the differential guarantee that a cached answer is byte-identical to a
   cold recomputation and that malformed input never kills the daemon. *)

module Json = Ts_analysis.Json
module Frame = Ts_service.Frame
module Request = Ts_service.Request
module Dispatch = Ts_service.Dispatch
module Pool = Ts_service.Pool
module Signals = Ts_service.Signals
module Server = Ts_service.Server
module Client = Ts_service.Client

(* --- framing ---------------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    (fun () -> f a b)
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())

let test_frame_roundtrip () =
  with_socketpair @@ fun a b ->
  List.iter
    (fun payload ->
      Frame.write a payload;
      match Frame.read b with
      | Ok got -> Alcotest.(check string) "payload survives framing" payload got
      | Error e -> Alcotest.failf "frame read failed: %s" (Frame.error_to_string e))
    [ ""; "x"; "{\"op\":\"ping\"}"; String.make 70_000 'j'; "trailing\n" ]

let read_error fd =
  match Frame.read fd with
  | Ok _ -> Alcotest.fail "expected a framing error"
  | Error e -> e

let test_frame_errors () =
  with_socketpair (fun a b ->
      Unix.close a;
      match read_error b with
      | Frame.Eof -> ()
      | e -> Alcotest.failf "expected Eof, got %s" (Frame.error_to_string e));
  with_socketpair (fun a b ->
      let junk = "notanumber\n" in
      ignore (Unix.write_substring a junk 0 (String.length junk));
      match read_error b with
      | Frame.Bad_length _ -> ()
      | e -> Alcotest.failf "expected Bad_length, got %s" (Frame.error_to_string e));
  with_socketpair (fun a b ->
      let claim = string_of_int (Frame.max_frame_bytes + 1) ^ "\n" in
      ignore (Unix.write_substring a claim 0 (String.length claim));
      match read_error b with
      | Frame.Too_large _ -> ()
      | e -> Alcotest.failf "expected Too_large, got %s" (Frame.error_to_string e));
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a "10\nabc" 0 6);
      Unix.close a;
      match read_error b with
      | Frame.Truncated short -> Alcotest.(check int) "bytes short" 7 short
      | e -> Alcotest.failf "expected Truncated, got %s" (Frame.error_to_string e))

let test_frame_parse_incremental () =
  (* the event loop's half: one frame delivered a few bytes at a time *)
  let payload = "{\"op\":\"ping\"}" in
  let wire = string_of_int (String.length payload) ^ "\n" ^ payload in
  let buf = Bytes.create 64 in
  let fed = ref 0 in
  let result = ref None in
  while !result = None && !fed < String.length wire do
    Bytes.blit_string wire !fed buf !fed 1;
    incr fed;
    match Frame.parse buf ~pos:0 ~len:!fed with
    | `Need_more -> ()
    | `Frame (off, n) -> result := Some (Bytes.sub_string buf off n)
    | `Error e -> Alcotest.failf "unexpected error: %s" (Frame.error_to_string e)
  done;
  Alcotest.(check (option string)) "payload found exactly at the last byte"
    (Some payload) !result;
  Alcotest.(check int) "and not a byte earlier" (String.length wire) !fed;
  (* two pipelined frames parse back-to-back from one buffer *)
  let two = wire ^ wire in
  let b = Bytes.of_string two in
  (match Frame.parse b ~pos:0 ~len:(String.length two) with
   | `Frame (off, n) -> (
     Alcotest.(check string) "first frame" payload (Bytes.sub_string b off n);
     match Frame.parse b ~pos:(off + n) ~len:(String.length two) with
     | `Frame (off2, n2) ->
       Alcotest.(check string) "second frame" payload (Bytes.sub_string b off2 n2)
     | _ -> Alcotest.fail "second frame not found")
   | _ -> Alcotest.fail "first frame not found");
  (* grammar errors surface as errors, not hangs *)
  (match Frame.parse (Bytes.of_string "notanumber\n") ~pos:0 ~len:11 with
   | `Error (Frame.Bad_length _) -> ()
   | _ -> Alcotest.fail "expected Bad_length");
  let oversize = string_of_int (Frame.max_frame_bytes + 1) ^ "\n" in
  match
    Frame.parse (Bytes.of_string oversize) ~pos:0 ~len:(String.length oversize)
  with
  | `Error (Frame.Too_large _) -> ()
  | _ -> Alcotest.fail "expected Too_large"

(* --- the JSON reader --------------------------------------------------- *)

let test_json_parse () =
  let ok s = match Json.of_string s with Ok v -> v | Error e -> Alcotest.failf "parse %S: %s" s e in
  Alcotest.(check bool) "null" true (ok "null" = Json.Null);
  Alcotest.(check bool) "int" true (ok " -42 " = Json.Int (-42));
  Alcotest.(check bool) "float" true (ok "2.5e1" = Json.Float 25.);
  Alcotest.(check bool) "string escapes" true
    (ok {|"a\"b\\c\nA😀"|} = Json.Str "a\"b\\c\nA\xf0\x9f\x98\x80");
  Alcotest.(check bool) "nested" true
    (ok {|{"a":[1,true,null],"b":{"c":"d"}}|}
     = Json.Obj
         [ ("a", Json.List [ Json.Int 1; Json.Bool true; Json.Null ]);
           ("b", Json.Obj [ ("c", Json.Str "d") ]) ]);
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "expected parse error on %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "nul"; "\"unterminated"; "1 2"; "{\"a\":}"; "07" ]

let test_json_roundtrip_emitter () =
  (* parsing what the emitter printed must reproduce the value *)
  let docs =
    [
      Json.Obj
        [ ("id", Json.Int 3); ("ok", Json.Bool true);
          ("xs", Json.List [ Json.Null; Json.Str "a b\n\"c\""; Json.Float 1.5 ]) ];
      Json.List []; Json.Obj []; Json.Str "\x01\x1f backslash \\";
    ]
  in
  List.iter
    (fun d ->
      Alcotest.(check bool) "compact round trip" true (Json.of_string (Json.to_string d) = Ok d);
      Alcotest.(check bool) "pretty round trip" true
        (Json.of_string (Json.to_string_pretty d) = Ok d))
    docs

let test_request_roundtrip () =
  let reqs =
    [
      Request.defaults;
      { Request.defaults with Request.op = Request.Resilient; id = 7;
        protocol = "swap"; n = 2; horizon = Some 12; t_faults = 2;
        deadline = Some 1.5; max_nodes = Some 9; check_solo = false };
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "of_json (to_json r) = Ok r" true
        (Request.of_json (Request.to_json r) = Ok r))
    reqs;
  (match Request.of_json (Json.Obj [ ("op", Json.Str "transmogrify") ]) with
   | Ok _ -> Alcotest.fail "unknown op must be rejected"
   | Error _ -> ());
  (match Request.of_json (Json.Obj [ ("op", Json.Str "ping"); ("n", Json.Str "three") ]) with
   | Ok _ -> Alcotest.fail "type-mismatched field must be rejected"
   | Error _ -> ())

(* --- the worker pool --------------------------------------------------- *)

let test_pool_runs_everything () =
  let pool = Pool.create ~workers:3 ~queue_cap:64 in
  let hits = Atomic.make 0 in
  for _ = 1 to 40 do
    match Pool.submit pool (fun () -> Atomic.incr hits) with
    | Pool.Accepted -> ()
    | Pool.Overloaded | Pool.Shutting_down -> Alcotest.fail "submit refused"
  done;
  Pool.shutdown pool;
  Alcotest.(check int) "all jobs ran before shutdown returned" 40 (Atomic.get hits)

let test_pool_backpressure_and_containment () =
  let pool = Pool.create ~workers:1 ~queue_cap:2 in
  let release = Atomic.make false in
  let submit job = Pool.submit pool job in
  (* wedge the single worker, then fill the queue *)
  ignore (submit (fun () -> while not (Atomic.get release) do Domain.cpu_relax () done));
  Unix.sleepf 0.05;
  ignore (submit (fun () -> failwith "contained"));
  ignore (submit (fun () -> ()));
  (match submit (fun () -> ()) with
   | Pool.Overloaded -> ()
   | Pool.Accepted -> Alcotest.fail "queue bound not enforced"
   | Pool.Shutting_down -> Alcotest.fail "pool not shutting down yet");
  Atomic.set release true;
  Pool.shutdown pool;
  Alcotest.(check int) "raising job contained and counted" 1 (Pool.job_errors pool);
  (match submit (fun () -> ()) with
   | Pool.Shutting_down -> ()
   | _ -> Alcotest.fail "post-shutdown submit must be refused")

(* --- signal plumbing --------------------------------------------------- *)

let test_signals_simulate () =
  Alcotest.(check bool) "nothing installed initially" false (Signals.installed ());
  let seen = ref [] in
  Signals.install ~exit_after:true ~on_signal:(fun s -> seen := s :: !seen);
  Fun.protect ~finally:Signals.uninstall (fun () ->
      Alcotest.(check bool) "installed" true (Signals.installed ());
      (* simulate runs the very callback a delivery would, but never exits
         — the fact that this test survives is half the point *)
      Signals.simulate Sys.sigint;
      Signals.simulate Sys.sigterm;
      Alcotest.(check (list int)) "callback saw both signals"
        [ Sys.sigterm; Sys.sigint ] !seen);
  Alcotest.(check bool) "uninstalled" false (Signals.installed ());
  Alcotest.(check int) "SIGINT convention" 130 (Signals.exit_code Sys.sigint);
  Alcotest.(check int) "SIGTERM convention" 143 (Signals.exit_code Sys.sigterm)

(* --- end to end over loopback TCP -------------------------------------- *)

let with_server ?(workers = 2) f =
  let server =
    Server.start { Server.default_config with Server.port = 0; workers }
  in
  Fun.protect (fun () -> f server) ~finally:(fun () -> Server.stop server)

let rpc_ok conn doc =
  match Client.rpc conn doc with
  | Ok d -> d
  | Error e -> Alcotest.failf "rpc failed: %s" e

let witness_req = { Request.defaults with Request.op = Request.Witness; n = 2 }

let member_str k doc =
  match Json.member k doc with Some (Json.Str s) -> Some s | _ -> None

let test_e2e_ping_and_witness () =
  with_server @@ fun server ->
  let conn = Client.connect_exn ~port:(Server.port server) () in
  Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
  let pong = rpc_ok conn (Request.to_json { Request.defaults with id = 9 }) in
  Alcotest.(check bool) "pong ok" true (Json.member "ok" pong = Some (Json.Bool true));
  Alcotest.(check bool) "id echoed" true (Json.member "id" pong = Some (Json.Int 9));
  let resp = rpc_ok conn (Request.to_json witness_req) in
  Alcotest.(check (option string)) "cold witness is fresh" (Some "fresh")
    (member_str "provenance" resp);
  Alcotest.(check (option string)) "witness completes" (Some "complete")
    (match Json.member "result" resp with
     | Some r -> member_str "status" r
     | None -> None)

let test_e2e_cached_equals_fresh () =
  with_server @@ fun server ->
  let conn = Client.connect_exn ~port:(Server.port server) () in
  Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
  let cold = rpc_ok conn (Request.to_json witness_req) in
  let warm = rpc_ok conn (Request.to_json witness_req) in
  Alcotest.(check (option string)) "second answer cached" (Some "cached")
    (member_str "provenance" warm);
  let result doc =
    match Json.member "result" doc with
    | Some r -> Json.to_string r
    | None -> Alcotest.fail "response carries no result"
  in
  (* the differential guarantee: byte-identical result bodies *)
  Alcotest.(check string) "cached result byte-identical to fresh" (result cold)
    (result warm);
  (* ... and both identical to a cold recomputation on a virgin dispatcher *)
  let virgin = Dispatch.create () in
  Alcotest.(check string) "fresh recomputation agrees byte for byte"
    (result cold)
    (result (Dispatch.handle virgin witness_req));
  Alcotest.(check bool) "same cache key reported" true
    (member_str "cache_key" cold = member_str "cache_key" warm)

let test_e2e_malformed_survival () =
  with_server @@ fun server ->
  let port = Server.port server in
  (* 1: framing garbage — answered with bad-frame, connection dropped *)
  let c1 = Client.connect_exn ~port () in
  Client.send_raw c1 "complete garbage\n";
  (match Client.recv c1 with
   | Ok doc ->
     Alcotest.(check (option string)) "bad-frame code" (Some "bad-frame")
       (match Json.member "error" doc with
        | Some e -> member_str "code" e
        | None -> None)
   | Error e -> Alcotest.failf "no error frame: %s" e);
  Client.close c1;
  (* 2: valid frame, invalid JSON — answered, connection survives *)
  let c2 = Client.connect_exn ~port () in
  Client.send_raw c2 "9\n{\"op\": xx";
  (match Client.recv c2 with
   | Ok doc ->
     Alcotest.(check (option string)) "bad-json code" (Some "bad-json")
       (match Json.member "error" doc with
        | Some e -> member_str "code" e
        | None -> None)
   | Error e -> Alcotest.failf "no error frame: %s" e);
  (* same connection still answers a well-formed request *)
  let pong = rpc_ok c2 (Request.to_json Request.defaults) in
  Alcotest.(check bool) "connection survives bad JSON" true
    (Json.member "ok" pong = Some (Json.Bool true));
  Client.close c2;
  (* 3: unknown protocol — typed error, daemon alive *)
  let c3 = Client.connect_exn ~port () in
  let resp =
    rpc_ok c3
      (Request.to_json
         { witness_req with Request.protocol = "no-such-protocol" })
  in
  Alcotest.(check (option string)) "unknown-protocol code" (Some "unknown-protocol")
    (match Json.member "error" resp with
     | Some e -> member_str "code" e
     | None -> None);
  Client.close c3;
  let s = Server.summary server in
  Alcotest.(check bool) "malformed frames counted" true (s.Server.malformed >= 2);
  Alcotest.(check int) "no handler died" 0 (s.Server.job_errors)

(* Regression: a single frame larger than the event loop's initial 8 KiB
   read buffer must still be read to completion.  The loop grows the
   buffer inside its read handler, so the select read-set must keep a
   connection whose buffer is full-but-growable — a guard that dropped it
   deadlocked the connection forever (found by the cluster coordinator,
   whose ingest frames cross 8 KiB on wide frontiers). *)
let test_e2e_oversized_frame () =
  with_server @@ fun server ->
  let big = String.make 30_000 'x' in
  let doc =
    Json.Obj [ ("op", Json.Str "witness"); ("protocol", Json.Str big) ]
  in
  (* a bounded-timeout client so a regression fails the test instead of
     hanging the suite *)
  let client =
    Client.make ~port:(Server.port server)
      ~policy:{ Client.default_policy with Client.attempts = 1; timeout_ms = 10_000 }
      ()
  in
  Fun.protect ~finally:(fun () -> Client.shutdown client) @@ fun () ->
  match Client.call client doc with
  | Error e -> Alcotest.failf "daemon never answered the 30k frame: %s" e
  | Ok resp ->
    Alcotest.(check (option string)) "typed error, whole frame parsed"
      (Some "unknown-protocol")
      (match Json.member "error" resp with
       | Some e -> member_str "code" e
       | None -> None)

let test_e2e_concurrent_clients () =
  with_server ~workers:4 @@ fun server ->
  let port = Server.port server in
  let reqs =
    [
      { Request.defaults with Request.op = Request.Witness; n = 2 };
      { Request.defaults with Request.op = Request.Valency; n = 2 };
      { Request.defaults with Request.op = Request.Check; protocol = "broken-lww"; n = 2 };
    ]
  in
  let worker i () =
    let conn = Client.connect_exn ~port () in
    Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
    List.init 6 (fun j ->
        let req = List.nth reqs ((i + j) mod List.length reqs) in
        Json.to_string
          (match Json.member "result" (rpc_ok conn (Request.to_json req)) with
           | Some r -> r
           | None -> Json.Null))
  in
  let per_domain =
    Array.init 4 (fun i -> Domain.spawn (worker i)) |> Array.map Domain.join
  in
  (* every domain asked the same three questions; the answers must agree
     byte for byte no matter which worker/cache path served them *)
  let canonical = ref [] in
  Array.iteri
    (fun i results ->
      List.iteri
        (fun j body ->
          let key = (i + j) mod List.length reqs in
          match List.assoc_opt key !canonical with
          | None -> canonical := (key, body) :: !canonical
          | Some expect ->
            Alcotest.(check string)
              (Printf.sprintf "domain %d answer %d consistent" i j)
              expect body)
        results)
    per_domain;
  let stats = Dispatch.cache_stats (Server.dispatcher server) in
  Alcotest.(check bool) "cache served repeats" true
    (stats.Ts_core.Cache.hits > 0)

(* --- persistence across restarts ---------------------------------------- *)

let test_e2e_restart_recovers () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tswitlog-e2e-%d.log" (Unix.getpid ()))
  in
  (try Sys.remove path with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let with_store_server f =
    let server =
      Server.start
        { Server.default_config with Server.port = 0; store_path = Some path }
    in
    Fun.protect (fun () -> f server) ~finally:(fun () -> Server.stop server)
  in
  let result doc =
    match Json.member "result" doc with
    | Some r -> Json.to_string r
    | None -> Alcotest.fail "response carries no result"
  in
  (* first daemon: compute and persist *)
  let fresh_body =
    with_store_server @@ fun server ->
    let conn = Client.connect_exn ~port:(Server.port server) () in
    Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
    let cold = rpc_ok conn (Request.to_json witness_req) in
    Alcotest.(check (option string)) "first answer fresh" (Some "fresh")
      (member_str "provenance" cold);
    let s = Server.summary server in
    (match s.Server.store with
     | None -> Alcotest.fail "no store stats on a store-backed server"
     | Some st ->
       Alcotest.(check int) "answer persisted" 1 st.Ts_store.Store.records);
    result cold
  in
  (* second daemon, same log: the answer must come back from disk,
     byte-identical, without recomputation *)
  with_store_server @@ fun server ->
  let conn = Client.connect_exn ~port:(Server.port server) () in
  Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
  let back = rpc_ok conn (Request.to_json witness_req) in
  Alcotest.(check (option string)) "served from the log" (Some "recovered")
    (member_str "provenance" back);
  Alcotest.(check string) "recovered result byte-identical to fresh" fresh_body
    (result back);
  (* now it is in the memory tier: the next hit is a plain cache hit *)
  let warm = rpc_ok conn (Request.to_json witness_req) in
  Alcotest.(check (option string)) "then cached" (Some "cached")
    (member_str "provenance" warm);
  Alcotest.(check string) "cached agrees too" fresh_body (result warm);
  match (Server.summary server).Server.store with
  | None -> Alcotest.fail "no store stats"
  | Some st ->
    Alcotest.(check int) "log replayed at open" 1 st.Ts_store.Store.recovered

(* --- pipelining ---------------------------------------------------------- *)

let test_e2e_pipelined_ordering () =
  (* a burst of frames sent before reading anything: responses must come
     back exactly in request order, even though some are answered on the
     loop and some by a worker *)
  with_server @@ fun server ->
  let conn = Client.connect_exn ~port:(Server.port server) () in
  Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
  let frame doc =
    let s = Json.to_string doc in
    string_of_int (String.length s) ^ "\n" ^ s
  in
  let reqs =
    [
      { witness_req with Request.id = 1 } (* deferred: engine computation *);
      { Request.defaults with Request.id = 2 } (* direct: ping *);
      { witness_req with Request.id = 3 } (* direct once 1 is cached *);
      { Request.defaults with Request.id = 4 };
    ]
  in
  Client.send_raw conn
    (String.concat "" (List.map (fun r -> frame (Request.to_json r)) reqs));
  List.iter
    (fun (r : Request.t) ->
      match Client.recv conn with
      | Error e -> Alcotest.failf "pipelined recv: %s" e
      | Ok doc ->
        Alcotest.(check bool)
          (Printf.sprintf "response %d in order" r.Request.id)
          true
          (Json.member "id" doc = Some (Json.Int r.Request.id)))
    reqs

(* --- the resilient client and the chaos layer --------------------------- *)

module Chaos = Ts_service.Chaos
module Response = Ts_service.Response

(* satellite regression: a server-side close mid-conversation surfaces as
   a tagged Error, never an escaped Unix_error *)
let test_conn_reset_tagged () =
  with_server @@ fun server ->
  let port = Server.port server in
  let c = Client.connect_exn ~port () in
  (* framing garbage earns the bad-frame answer and a server-side close *)
  Client.send_raw c "complete garbage\n";
  (match Client.recv c with
   | Ok doc ->
     Alcotest.(check (option string)) "bad-frame first" (Some "bad-frame")
       (match Json.member "error" doc with
        | Some e -> member_str "code" e
        | None -> None)
   | Error e -> Alcotest.failf "no error frame: %s" e);
  (* the next exchange runs into the closed socket: tagged, no raise *)
  (match Client.rpc c (Request.to_json Request.defaults) with
   | Ok doc -> Alcotest.failf "rpc on a dead conn answered: %s" (Json.to_string doc)
   | Error msg ->
     Alcotest.(check string) "tagged conn_reset" "conn_reset"
       (Client.error_tag msg));
  Client.close c;
  (* and a refused connect is a tagged Error too *)
  match Client.connect ~port:1 () with
  | Ok _ -> Alcotest.fail "connected to port 1"
  | Error msg ->
    Alcotest.(check string) "tagged connect" "connect" (Client.error_tag msg)

let test_health_op () =
  with_server @@ fun server ->
  let conn = Client.connect_exn ~port:(Server.port server) () in
  Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
  let req = { Request.defaults with Request.op = Request.Health; id = 5 } in
  let doc = rpc_ok conn (Request.to_json req) in
  Alcotest.(check bool) "ok" true (Json.member "ok" doc = Some (Json.Bool true));
  let result = match Json.member "result" doc with Some r -> r | None -> Json.Null in
  Alcotest.(check (option string)) "status ok" (Some "ok")
    (member_str "status" result);
  Alcotest.(check bool) "load snapshot present" true
    (Json.member "queue_depth" result <> None
    && Json.member "workers" result <> None);
  (* never cached: a second ask carries no provenance marker *)
  let again = rpc_ok conn (Request.to_json req) in
  Alcotest.(check (option string)) "health is not a cache citizen" None
    (member_str "provenance" again)

(* the error envelope carries the machine-readable hint ... *)
let test_retry_after_envelope () =
  let doc = Response.error ~retry_after_ms:50 ~id:(Some 3) ~code:"overloaded" "busy" in
  match Json.member "error" doc with
  | Some err ->
    Alcotest.(check bool) "retry_after_ms in the error object" true
      (Json.member "retry_after_ms" err = Some (Json.Int 50));
    Alcotest.(check (option string)) "code kept" (Some "overloaded")
      (member_str "code" err)
  | None -> Alcotest.fail "no error object"

(* ... and the resilient client honors it: a hand-rolled server refuses
   the first attempt with retry_after_ms and serves the second *)
let test_retry_after_honored () =
  let lsock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lsock 4;
  let port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "no port"
  in
  let server =
    Domain.spawn (fun () ->
        let serve_one doc =
          let fd, _ = Unix.accept lsock in
          (match Ts_service.Frame.read fd with
           | Ok _ -> Ts_service.Frame.write fd (Json.to_string doc)
           | Error _ -> ());
          fd
        in
        (* first attempt: the busy refusal, connection left open *)
        let fd1 =
          serve_one
            (Response.error ~retry_after_ms:30 ~id:(Some 1) ~code:"overloaded"
               "queue full")
        in
        (* the client keeps the connection for the retry *)
        (match Ts_service.Frame.read fd1 with
         | Ok _ ->
           Ts_service.Frame.write fd1
             (Json.to_string
                (Json.Obj
                   [ ("id", Json.Int 1); ("ok", Json.Bool true);
                     ("result", Json.Str "served") ]))
         | Error _ -> ());
        Unix.close fd1;
        Unix.close lsock)
  in
  let cl =
    Client.make
      ~policy:{ Client.default_policy with attempts = 3; backoff_ms = 5 }
      ~port ()
  in
  let t0 = Unix.gettimeofday () in
  (match Client.call cl (Request.to_json { Request.defaults with Request.id = 1 }) with
   | Ok doc ->
     Alcotest.(check bool) "second attempt served" true
       (Json.member "ok" doc = Some (Json.Bool true))
   | Error msg -> Alcotest.failf "call failed: %s" msg);
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let s = Client.stats cl in
  Client.shutdown cl;
  Domain.join server;
  Alcotest.(check int) "one busy refusal seen" 1 s.Client.server_busy;
  Alcotest.(check int) "its retry_after_ms honored" 1 s.Client.retry_after_honored;
  Alcotest.(check int) "one retry spent" 1 s.Client.retries;
  Alcotest.(check bool) "the hinted pause was actually taken" true
    (elapsed_ms >= 25.)

(* the e2e chaos bar in miniature: every call through a proxy faulting
   every connection must still succeed with byte-identical answers *)
let test_resilient_through_chaos () =
  with_server ~workers:2 @@ fun server ->
  let port = Server.port server in
  (* fault-free reference body *)
  let direct = Client.connect_exn ~port () in
  let reference =
    match Json.member "result" (rpc_ok direct (Request.to_json witness_req)) with
    | Some r -> Json.to_string r
    | None -> Alcotest.fail "no result"
  in
  Client.close direct;
  let proxy =
    Chaos.start
      { (Chaos.default_config ~upstream_port:port) with seed = 11; fault_prob = 1.0 }
  in
  Fun.protect ~finally:(fun () -> Chaos.stop proxy) @@ fun () ->
  let cl =
    Client.make
      ~policy:{ Client.default_policy with attempts = 12; backoff_ms = 5; seed = 11 }
      ~port:(Chaos.port proxy) ()
  in
  for i = 1 to 25 do
    match Client.call cl (Request.to_json { witness_req with Request.id = i }) with
    | Error msg -> Alcotest.failf "call %d exhausted: %s" i msg
    | Ok doc ->
      (match Json.member "result" doc with
       | Some r ->
         Alcotest.(check string)
           (Printf.sprintf "call %d byte-identical through chaos" i)
           reference (Json.to_string r)
       | None -> Alcotest.failf "call %d: no result" i)
  done;
  let cs = Client.stats cl in
  Client.shutdown cl;
  let ps = Chaos.stats proxy in
  Alcotest.(check int) "every call eventually answered" 25 cs.Client.calls;
  Alcotest.(check bool) "faults were actually injected" true
    (ps.Chaos.faulted > 0);
  Alcotest.(check bool) "and absorbed by retries, not luck" true
    (cs.Client.retries > 0 || ps.Chaos.resets = 0)

(* a dead upstream trips the breaker after the configured streak *)
let test_breaker_opens () =
  let cl =
    Client.make
      ~policy:
        {
          Client.default_policy with
          attempts = 4;
          backoff_ms = 2;
          backoff_max_ms = 4;
          breaker_threshold = 2;
          breaker_cooldown_ms = 20;
        }
      ~port:1 ()
  in
  (match Client.call cl (Request.to_json Request.defaults) with
   | Ok _ -> Alcotest.fail "called through a dead port"
   | Error msg ->
     Alcotest.(check bool) "exhausted reported" true
       (Client.error_tag msg = "exhausted"));
  let s = Client.stats cl in
  Client.shutdown cl;
  Alcotest.(check int) "all attempts spent" 4 s.Client.attempts_made;
  Alcotest.(check bool) "breaker opened on the streak" true
    (s.Client.breaker_opens >= 1);
  Alcotest.(check int) "every attempt a tagged connect failure" 4
    s.Client.connect_errors

let suite =
  ( "service",
    [
      Alcotest.test_case "frame round trip" `Quick test_frame_roundtrip;
      Alcotest.test_case "frame error taxonomy" `Quick test_frame_errors;
      Alcotest.test_case "frame incremental parse" `Quick
        test_frame_parse_incremental;
      Alcotest.test_case "json reader" `Quick test_json_parse;
      Alcotest.test_case "json round trips the emitter" `Quick test_json_roundtrip_emitter;
      Alcotest.test_case "request wire round trip" `Quick test_request_roundtrip;
      Alcotest.test_case "pool drains everything" `Quick test_pool_runs_everything;
      Alcotest.test_case "pool backpressure + containment" `Quick
        test_pool_backpressure_and_containment;
      Alcotest.test_case "signal handlers (simulated delivery)" `Quick
        test_signals_simulate;
      Alcotest.test_case "e2e: ping and witness over TCP" `Quick
        test_e2e_ping_and_witness;
      Alcotest.test_case "e2e: cached equals fresh, byte for byte" `Quick
        test_e2e_cached_equals_fresh;
      Alcotest.test_case "e2e: a frame beyond the loop's initial buffer" `Quick
        test_e2e_oversized_frame;
      Alcotest.test_case "e2e: malformed input never kills the daemon" `Quick
        test_e2e_malformed_survival;
      Alcotest.test_case "e2e: concurrent clients agree" `Quick
        test_e2e_concurrent_clients;
      Alcotest.test_case "e2e: restart recovers answers from the store" `Quick
        test_e2e_restart_recovers;
      Alcotest.test_case "e2e: pipelined responses keep request order" `Quick
        test_e2e_pipelined_ordering;
      Alcotest.test_case "client: server-side close is a tagged error" `Quick
        test_conn_reset_tagged;
      Alcotest.test_case "health op: readiness + load snapshot" `Quick
        test_health_op;
      Alcotest.test_case "error envelope carries retry_after_ms" `Quick
        test_retry_after_envelope;
      Alcotest.test_case "client honors a server retry_after_ms" `Quick
        test_retry_after_honored;
      Alcotest.test_case "e2e: resilient client through the chaos proxy" `Quick
        test_resilient_through_chaos;
      Alcotest.test_case "client: circuit breaker opens on a failure streak"
        `Quick test_breaker_opens;
    ] )
