(* Witness certificates and the independent micro-checker.

   The contract under test: every certificate the engine emits passes
   both the stdlib-only micro-checker and the engine-side replay, and
   every mutation of a certificate — any single byte, a reattributed
   schedule step, a rewritten verdict (even with a freshly forged
   digest), a zeroed digest — is rejected. *)

module Cert = Ts_cert.Cert
module Microcheck = Ts_microcheck.Microcheck
module J = Ts_microcheck.Microcheck.Json
module Explore = Ts_checker.Explore
module Theorem = Ts_core.Theorem
module Broken = Ts_protocols.Broken
module Value = Ts_model.Value

let ok_or_fail what = function
  | Ok x -> x
  | Error e -> Alcotest.failf "%s: %s" what e

let kind_of cert =
  match J.member "kind" (Cert.to_json cert) with
  | Some (J.Str k) -> k
  | _ -> Alcotest.fail "certificate has no kind field"

(* The two format-version pins must move together; the digest golden in
   suite_digest pins the serialized header as well. *)
let test_version_pin () =
  Alcotest.(check int) "cert_version" 1 Cert.cert_version;
  Alcotest.(check int) "micro-checker supports it" Cert.cert_version
    Microcheck.supported_cert_version

let racing_theorem_cert () =
  let proto = Ts_protocols.Racing.make ~n:2 in
  match Theorem.theorem1_escalate proto ~initial_horizon:8 with
  | Theorem.Complete c, _ -> (proto, Cert.of_theorem proto c)
  | Theorem.Partial _, _ ->
      Alcotest.fail "racing n=2 Theorem 1 should complete unbudgeted"

let test_theorem_roundtrip () =
  let proto, cert = racing_theorem_cert () in
  Alcotest.(check string) "kind" "space_bound" (kind_of cert);
  ok_or_fail "micro-checker" (Cert.microcheck cert);
  ok_or_fail "engine replay" (Cert.validate proto cert);
  let s = Cert.to_string cert in
  let reparsed = ok_or_fail "reparse" (Cert.of_string s) in
  Alcotest.(check string) "serialization roundtrip" s (Cert.to_string reparsed)

(* One certificate per violation kind, each from the protocol family
   built to exhibit it. *)
let violation_of what (r : Explore.result) =
  match r.Explore.verdict with
  | Error v -> v
  | Ok () -> Alcotest.failf "%s: expected a violation" what

let agreement_witness () =
  let proto = Broken.last_write_wins ~n:2 in
  ( Ts_model.Protocol.Packed proto,
    Cert.of_violation proto
      (violation_of "broken-lww"
         (Explore.check_consensus proto
            ~inputs_list:(Explore.binary_inputs 2)
            ~max_configs:20_000 ~max_depth:40 ~solo_budget:200
            ~check_solo:false)) )

let validity_witness () =
  let proto = Broken.oblivious_seven ~n:2 in
  ( Ts_model.Protocol.Packed proto,
    Cert.of_violation proto
      (violation_of "oblivious-seven"
         (Explore.check_consensus proto
            ~inputs_list:(Explore.binary_inputs 2)
            ~max_configs:20_000 ~max_depth:40 ~solo_budget:200
            ~check_solo:false)) )

let solo_witness () =
  let proto = Broken.wait_for_all ~n:2 in
  ( Ts_model.Protocol.Packed proto,
    Cert.of_violation proto
      (violation_of "wait-for-all solo"
         (Explore.check_consensus proto
            ~inputs_list:(Explore.binary_inputs 2)
            ~max_configs:20_000 ~max_depth:40 ~solo_budget:200
            ~check_solo:true)) )

let resilience_witness () =
  let proto = Broken.wait_for_all ~n:2 in
  ( Ts_model.Protocol.Packed proto,
    Cert.of_violation proto
      (violation_of "wait-for-all crash"
         (Explore.check_t_resilient ~t:1 proto
            ~inputs_list:(Explore.binary_inputs 2)
            ~max_configs:20_000 ~max_depth:40 ~solo_budget:200)) )

let test_violation_roundtrips () =
  List.iter
    (fun (expected_kind, make) ->
      let Ts_model.Protocol.Packed proto, cert = make () in
      Alcotest.(check string) "kind" expected_kind (kind_of cert);
      ok_or_fail (expected_kind ^ " micro-checker") (Cert.microcheck cert);
      ok_or_fail (expected_kind ^ " engine replay") (Cert.validate proto cert);
      let s = Cert.to_string cert in
      ok_or_fail (expected_kind ^ " from bytes") (Cert.microcheck_string s))
    [
      ("agreement", agreement_witness);
      ("validity", validity_witness);
      ("solo-termination", solo_witness);
      ("resilience", resilience_witness);
    ]

(* Tampering.  The resigned mutants carry a correct digest, so their
   rejection proves the checker replays rather than just hashing. *)
let edit_field name f cert =
  match Cert.to_json cert with
  | J.Obj kvs ->
      Cert.of_json
        (J.Obj (List.map (fun (k, v) -> if k = name then (k, f v) else (k, v)) kvs))
  | _ -> Alcotest.fail "certificate is not an object"

let reject what s =
  match Microcheck.check_string s with
  | Error _ -> ()
  | Ok () -> Alcotest.failf "%s: tampered certificate was ACCEPTED" what

let test_tamper_rejection () =
  let _, cert = racing_theorem_cert () in
  let tampered_schedule = function
    | J.List (J.Obj ev :: rest) ->
        J.List
          (J.Obj
             (List.map
                (fun (k, v) ->
                  match (k, v) with
                  | "p", J.Int p -> (k, J.Int (p + 1))
                  | kv -> kv)
                ev)
          :: rest)
    | other -> other
  in
  reject "schedule tamper, forged digest"
    (Cert.to_string (Cert.resign (edit_field "schedule" tampered_schedule cert)));
  reject "verdict tamper, forged digest"
    (Cert.to_string (Cert.resign (edit_field "claim" (fun _ -> J.Obj []) cert)));
  reject "zeroed digest"
    (Cert.to_string
       (edit_field "digest" (fun _ -> J.Str (String.make 16 '0')) cert));
  (* and the honest original still passes after all that copying *)
  ok_or_fail "untampered control" (Cert.microcheck cert)

(* Any single flipped byte — anywhere in the document — must be caught,
   by the parser, the digest, the replay or the claim check. *)
let test_byte_flip_property () =
  let _, cert = racing_theorem_cert () in
  let s = Cert.to_string cert in
  let test =
    QCheck2.Test.make ~count:200 ~name:"any byte flip is rejected"
      QCheck2.Gen.(pair (int_bound (String.length s - 1)) (int_range 1 255))
      (fun (i, mask) ->
        let b = Bytes.of_string s in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask));
        Result.is_error (Microcheck.check_string (Bytes.to_string b)))
  in
  QCheck2.Test.check_exn test

(* Whatever violation the engine finds under whatever bounds, the
   certificate built from it certifies: randomize the protocol and the
   exploration bounds, require micro-checker + replay acceptance. *)
let test_engine_witnesses_certify () =
  let protos =
    [|
      ("broken-lww", fun n -> Ts_model.Protocol.Packed (Broken.last_write_wins ~n));
      ("broken-max", fun n -> Ts_model.Protocol.Packed (Broken.naive_max ~n));
      ("oblivious-seven", fun n -> Ts_model.Protocol.Packed (Broken.oblivious_seven ~n));
      ("wait-for-all", fun n -> Ts_model.Protocol.Packed (Broken.wait_for_all ~n));
    |]
  in
  let test =
    QCheck2.Test.make ~count:25 ~name:"any engine witness certifies"
      QCheck2.Gen.(triple (int_bound (Array.length protos - 1)) (int_range 8 40)
                     (int_range 2 3))
      (fun (pi, max_depth, n) ->
        let _, make = protos.(pi) in
        let (Ts_model.Protocol.Packed proto) = make n in
        let r =
          Explore.check_consensus proto ~inputs_list:(Explore.binary_inputs n)
            ~max_configs:20_000 ~max_depth ~solo_budget:100 ~check_solo:true
        in
        match r.Explore.verdict with
        | Ok () -> true (* bounds too tight to expose the bug: vacuous *)
        | Error v ->
            let cert = Cert.of_violation proto v in
            Result.is_ok (Cert.microcheck cert)
            && Result.is_ok (Cert.validate proto cert))
  in
  QCheck2.Test.check_exn test

let suite =
  ( "cert",
    [
      Alcotest.test_case "format version pinned" `Quick test_version_pin;
      Alcotest.test_case "theorem certificate roundtrip" `Quick
        test_theorem_roundtrip;
      Alcotest.test_case "violation certificates roundtrip" `Quick
        test_violation_roundtrips;
      Alcotest.test_case "tampered certificates rejected" `Quick
        test_tamper_rejection;
      Alcotest.test_case "byte flips rejected (property)" `Quick
        test_byte_flip_property;
      Alcotest.test_case "engine witnesses certify (property)" `Slow
        test_engine_witnesses_certify;
    ] )
