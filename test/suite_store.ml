(* The persistent witness store: format, recovery, durability glue.

   The store's contract is the serving story's differential guarantee made
   durable: an answer read back from disk must be the exact bytes that
   were appended, across process restarts and across a torn tail cut.
   These tests exercise the format edges a daemon restart meets in anger —
   clean replay, idempotent re-append, a mid-record crash, checksum
   damage, a foreign or future-versioned file — plus the QCheck property
   that replay recovers exactly what was appended, whatever the corpus. *)

open Ts_model
module Store = Ts_store.Store
module Cache = Ts_core.Cache

let tmp_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tswitlog-test-%d-%d.log" (Unix.getpid ()) !n)

let with_log f =
  let path = tmp_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let open_ok ?fsync path =
  match Store.open_ ?fsync path with
  | Ok t -> t
  | Error msg -> Alcotest.failf "open_ %s: %s" path msg

let key_of s = Ckey.of_string s

let file_size path = (Unix.stat path).Unix.st_size

(* append through reopen: every record comes back byte-identical *)
let test_roundtrip () =
  with_log @@ fun path ->
  let pairs =
    [
      ("k1", "{\"verdict\":\"clean\"}");
      ("key-two", String.make 1000 'x');
      ("\x00\x01\xff", "binary-safe value \x00\xff");
    ]
  in
  let t = open_ok path in
  List.iter
    (fun (k, v) ->
      Alcotest.(check bool) "append is fresh" true
        (Store.append t ~key:(key_of k) ~value:v))
    pairs;
  List.iter
    (fun (k, v) ->
      Alcotest.(check (option string)) "find before close" (Some v)
        (Store.find t (key_of k)))
    pairs;
  let s = Store.stats t in
  Alcotest.(check int) "records" 3 s.Store.records;
  Alcotest.(check int) "appends" 3 s.Store.appends;
  Store.close t;
  (* reopen: index rebuilt from disk *)
  let t = open_ok path in
  let s = Store.stats t in
  Alcotest.(check int) "recovered" 3 s.Store.recovered;
  Alcotest.(check int) "no torn tail" 0 s.Store.torn_truncations;
  List.iter
    (fun (k, v) ->
      Alcotest.(check (option string)) "find after reopen" (Some v)
        (Store.find t (key_of k)))
    pairs;
  Alcotest.(check bool) "mem hit" true (Store.mem t (key_of "k1"));
  Alcotest.(check bool) "mem miss" false (Store.mem t (key_of "absent"));
  Store.close t

let test_idempotent_append () =
  with_log @@ fun path ->
  let t = open_ok path in
  ignore (Store.append t ~key:(key_of "k") ~value:"v1");
  let size1 = (Store.stats t).Store.bytes in
  Alcotest.(check bool) "second append is a no-op" false
    (Store.append t ~key:(key_of "k") ~value:"v2");
  Alcotest.(check int) "no bytes written" size1 (Store.stats t).Store.bytes;
  Alcotest.(check (option string)) "first value wins" (Some "v1")
    (Store.find t (key_of "k"));
  Store.close t

(* a crash mid-append loses at most the record being appended *)
let test_torn_tail_truncated () =
  with_log @@ fun path ->
  let t = open_ok path in
  ignore (Store.append t ~key:(key_of "a") ~value:"alpha");
  ignore (Store.append t ~key:(key_of "b") ~value:"beta");
  let good = (Store.stats t).Store.bytes in
  ignore (Store.append t ~key:(key_of "c") ~value:"gamma");
  let full = (Store.stats t).Store.bytes in
  Store.close t;
  (* tear the last record: drop its final 3 bytes *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Unix.ftruncate fd (full - 3);
  Unix.close fd;
  let t = open_ok path in
  let s = Store.stats t in
  Alcotest.(check int) "one truncation" 1 s.Store.torn_truncations;
  Alcotest.(check int) "tail cut back to the last valid record" good
    s.Store.bytes;
  Alcotest.(check int) "torn bytes counted" (full - 3 - good) s.Store.torn_bytes;
  Alcotest.(check int) "survivors recovered" 2 s.Store.recovered;
  Alcotest.(check (option string)) "survivor byte-identical" (Some "alpha")
    (Store.find t (key_of "a"));
  Alcotest.(check (option string)) "torn record gone" None
    (Store.find t (key_of "c"));
  (* the log must accept appends again on the clean boundary *)
  Alcotest.(check bool) "append after recovery" true
    (Store.append t ~key:(key_of "c") ~value:"gamma2");
  Alcotest.(check (option string)) "re-appended record served" (Some "gamma2")
    (Store.find t (key_of "c"));
  Store.close t;
  Alcotest.(check int) "file physically truncated" good
    (file_size path
    - String.length (Store.record_bytes ~key:"c" ~value:"gamma2"))

let test_crc_damage_drops_tail () =
  with_log @@ fun path ->
  let t = open_ok path in
  ignore (Store.append t ~key:(key_of "a") ~value:"alpha");
  let good = (Store.stats t).Store.bytes in
  ignore (Store.append t ~key:(key_of "b") ~value:"beta");
  Store.close t;
  (* flip one byte inside the second record's value *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd (file_size path - 1) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "X") 0 1);
  Unix.close fd;
  let t = open_ok path in
  let s = Store.stats t in
  Alcotest.(check int) "checksum damage truncates" 1 s.Store.torn_truncations;
  Alcotest.(check int) "only the intact prefix survives" 1 s.Store.recovered;
  Alcotest.(check int) "size back at the damage boundary" good s.Store.bytes;
  Alcotest.(check (option string)) "intact record unharmed" (Some "alpha")
    (Store.find t (key_of "a"));
  Store.close t

let test_foreign_and_future_files_refused () =
  with_log @@ fun path ->
  (* not a witness log at all *)
  let oc = open_out_bin path in
  output_string oc "definitely not a log with enough bytes to have a header";
  close_out oc;
  (match Store.open_ path with
   | Error msg ->
     Alcotest.(check bool) "bad magic named" true
       (String.length msg > 0)
   | Ok _ -> Alcotest.fail "opened a foreign file");
  (* right magic, wrong version *)
  let oc = open_out_bin path in
  output_string oc Store.magic;
  output_string oc "\x63\x00\x00\x00\x00\x00\x00\x00" (* version 99 *);
  close_out oc;
  match Store.open_ path with
  | Error msg ->
    Alcotest.(check bool) "version mismatch diagnosed" true
      (let has_sub hay needle =
         let nh = String.length hay and nn = String.length needle in
         let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
         go 0
       in
       has_sub msg "version 99")
  | Ok _ -> Alcotest.fail "opened a future-versioned file"

(* the cache glue: write-through persists, warm-load does not re-persist *)
let test_write_through_cache () =
  with_log @@ fun path ->
  let t = open_ok path in
  let cache = Cache.create ~capacity:16 () in
  Cache.set_write_through cache (fun key value ->
      ignore (Store.append t ~key ~value));
  Cache.put cache (key_of "k") "persisted";
  Alcotest.(check (option string)) "write-through reached the log"
    (Some "persisted")
    (Store.find t (key_of "k"));
  let appends_before = (Store.stats t).Store.appends in
  Cache.put ~write_through:false cache (key_of "k2") "memory-only";
  Alcotest.(check int) "warm-load insert skipped the log" appends_before
    (Store.stats t).Store.appends;
  Alcotest.(check (option string)) "but is served from memory"
    (Some "memory-only")
    (Cache.find cache (key_of "k2"));
  Store.close t

(* ---- crash-point injection and torture --------------------------------- *)

module Torture = Ts_store.Torture

(* an armed byte budget tears the in-flight record at exactly that byte *)
let test_crash_after_bytes () =
  with_log @@ fun path ->
  let t = open_ok path in
  ignore (Store.append t ~key:(key_of "a") ~value:"alpha");
  let good = (Store.stats t).Store.bytes in
  (* the record is 12 header + 1 key + 4 value bytes; a 14-byte budget
     tears it just past the header *)
  Store.inject_crash t (Store.Crash_after_bytes 14);
  Alcotest.(check bool) "armed" true (Store.crash_armed t <> None);
  (match Store.append t ~key:(key_of "b") ~value:"beta" with
   | exception Store.Injected_crash -> ()
   | _ -> Alcotest.fail "append survived the armed crash");
  Alcotest.(check int) "exactly the budget hit the disk" (good + 14)
    (file_size path);
  Alcotest.(check bool) "the handle died with the crash" true
    (match Store.find t (key_of "a") with
     | exception _ -> true
     | _ -> false);
  let t = open_ok path in
  let s = Store.stats t in
  Alcotest.(check int) "torn tail cut" 1 s.Store.torn_truncations;
  Alcotest.(check int) "torn bytes = the armed budget" 14 s.Store.torn_bytes;
  Alcotest.(check int) "in-flight record lost, prior prefix intact" 1
    s.Store.recovered;
  Alcotest.(check (option string)) "survivor byte-identical" (Some "alpha")
    (Store.find t (key_of "a"));
  Alcotest.(check bool) "log accepts appends again" true
    (Store.append t ~key:(key_of "b") ~value:"beta");
  Store.close t

(* a crash inside the 12-byte header leaves a tail recovery must also cut *)
let test_crash_mid_header () =
  with_log @@ fun path ->
  let t = open_ok path in
  ignore (Store.append t ~key:(key_of "a") ~value:"alpha");
  Store.inject_crash t (Store.Crash_after_bytes (Store.record_header_len - 7));
  (match Store.append t ~key:(key_of "b") ~value:"beta" with
   | exception Store.Injected_crash -> ()
   | _ -> Alcotest.fail "append survived the armed crash");
  let t = open_ok path in
  let s = Store.stats t in
  Alcotest.(check int) "header shard truncated" 1 s.Store.torn_truncations;
  Alcotest.(check int) "of exactly the armed size" (Store.record_header_len - 7)
    s.Store.torn_bytes;
  Alcotest.(check (option string)) "prior record served" (Some "alpha")
    (Store.find t (key_of "a"));
  Store.close t

(* dying before the fsync recovers the fully-written unacknowledged
   record: durable but unacked is allowed, lost but acked is not *)
let test_crash_before_sync () =
  with_log @@ fun path ->
  let t = open_ok path in
  ignore (Store.append t ~key:(key_of "a") ~value:"alpha");
  Store.inject_crash t Store.Crash_before_sync;
  (match Store.append t ~key:(key_of "b") ~value:"beta" with
   | exception Store.Injected_crash -> ()
   | _ -> Alcotest.fail "append survived the armed crash");
  let t = open_ok path in
  let s = Store.stats t in
  Alcotest.(check int) "no torn tail" 0 s.Store.torn_truncations;
  Alcotest.(check int) "unacked record fully recovered" 2 s.Store.recovered;
  Alcotest.(check (option string)) "its value intact" (Some "beta")
    (Store.find t (key_of "b"));
  Store.close t

(* disarming really is zero-cost: the append proceeds untouched *)
let test_crash_disarm () =
  with_log @@ fun path ->
  let t = open_ok path in
  Store.inject_crash t (Store.Crash_after_bytes 3);
  Store.crash_disarm t;
  Alcotest.(check bool) "disarmed" false (Store.crash_armed t <> None);
  Alcotest.(check bool) "append proceeds" true
    (Store.append t ~key:(key_of "a") ~value:"alpha");
  Store.close t

(* the CI torture bar: 300 seeded append/crash/reopen cycles with the
   sharp invariants of Torture.verify at every reopen *)
let test_torture_300 () =
  with_log @@ fun path ->
  match Torture.run ~seed:2026 ~iterations:300 ~path () with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    Alcotest.(check int) "all iterations ran" 300 r.Torture.iterations;
    Alcotest.(check bool) "every crash class actually fired" true
      (r.Torture.crashes_mid_write > 0
      && r.Torture.crashes_mid_header > 0
      && r.Torture.crashes_before_sync > 0
      && r.Torture.abandons > 0);
    Alcotest.(check bool) "torn tails were cut and accounted" true
      (r.Torture.torn_tails > 0 && r.Torture.torn_bytes > 0)

(* and the contract holds whatever the seed, not just the CI one *)
let prop_torture_any_seed =
  QCheck.Test.make ~name:"store: torture invariants hold for arbitrary seeds"
    ~count:8
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let path = tmp_path () in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          match Torture.run ~seed ~iterations:40 ~path () with
          | Ok _ -> true
          | Error msg -> QCheck.Test.fail_report msg))

(* satellite: lazy-fsync durability — everything appended before an
   explicit sync must survive an abandoned handle, and the sync counter
   must reflect the policy (no syncs on Interval appends, none on Never) *)
let prop_interval_presync_survives =
  QCheck.Test.make
    ~name:"store: Interval fsync — synced prefix survives an abandoned handle"
    ~count:30
    QCheck.(pair (int_range 1 8) (int_range 0 6))
    (fun (pre, post) ->
      let path = tmp_path () in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let t = open_ok ~fsync:(Store.Interval 3600.) path in
          for i = 1 to pre do
            ignore
              (Store.append t
                 ~key:(key_of (Printf.sprintf "pre-%d" i))
                 ~value:(string_of_int i))
          done;
          if (Store.stats t).Store.syncs <> 0 then
            QCheck.Test.fail_report "Interval appends must not fsync";
          Store.sync t;
          if (Store.stats t).Store.syncs <> 1 then
            QCheck.Test.fail_report "explicit sync not counted";
          for i = 1 to post do
            ignore
              (Store.append t
                 ~key:(key_of (Printf.sprintf "post-%d" i))
                 ~value:(string_of_int i))
          done;
          Store.abandon t;
          let t = open_ok path in
          let ok = ref ((Store.stats t).Store.torn_truncations = 0) in
          for i = 1 to pre do
            if
              Store.find t (key_of (Printf.sprintf "pre-%d" i))
              <> Some (string_of_int i)
            then ok := false
          done;
          Store.close t;
          !ok))

let test_fsync_policy_counters () =
  with_log @@ fun path ->
  let t = open_ok path in
  ignore (Store.append t ~key:(key_of "a") ~value:"v");
  ignore (Store.append t ~key:(key_of "b") ~value:"v");
  Alcotest.(check int) "Always: one fsync per acked append" 2
    (Store.stats t).Store.syncs;
  Store.close t;
  with_log @@ fun path2 ->
  let t = open_ok ~fsync:Store.Never path2 in
  ignore (Store.append t ~key:(key_of "a") ~value:"v");
  Alcotest.(check int) "Never: appends issue no fsync" 0
    (Store.stats t).Store.syncs;
  Store.close t

(* QCheck: replay(append xs) == xs for arbitrary corpora *)
let prop_replay_recovers =
  let gen =
    QCheck.(
      small_list (pair (string_of_size (Gen.int_range 1 40)) printable_string))
  in
  QCheck.Test.make ~name:"store: reopen recovers exactly what was appended"
    ~count:60 gen (fun pairs ->
      (* distinct, non-empty keys: the log is content-addressed *)
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          if String.length k > 0 && not (Hashtbl.mem tbl k) then
            Hashtbl.add tbl k v)
        pairs;
      let path = tmp_path () in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let t = open_ok ~fsync:Store.Never path in
          Hashtbl.iter
            (fun k v -> ignore (Store.append t ~key:(key_of k) ~value:v))
            tbl;
          Store.close t;
          let t = open_ok ~fsync:Store.Never path in
          let ok = ref ((Store.stats t).Store.records = Hashtbl.length tbl) in
          Hashtbl.iter
            (fun k v ->
              if Store.find t (key_of k) <> Some v then ok := false)
            tbl;
          Store.close t;
          !ok))

let suite =
  ( "store",
    [
      Alcotest.test_case "roundtrip through reopen" `Quick test_roundtrip;
      Alcotest.test_case "idempotent append" `Quick test_idempotent_append;
      Alcotest.test_case "torn tail truncated, survivors served" `Quick
        test_torn_tail_truncated;
      Alcotest.test_case "checksum damage drops the tail" `Quick
        test_crc_damage_drops_tail;
      Alcotest.test_case "foreign and future files refused" `Quick
        test_foreign_and_future_files_refused;
      Alcotest.test_case "write-through cache glue" `Quick
        test_write_through_cache;
      Alcotest.test_case "crash-point: torn mid-record" `Quick
        test_crash_after_bytes;
      Alcotest.test_case "crash-point: torn mid-header" `Quick
        test_crash_mid_header;
      Alcotest.test_case "crash-point: before the fsync" `Quick
        test_crash_before_sync;
      Alcotest.test_case "crash-point: disarm is a no-op" `Quick
        test_crash_disarm;
      Alcotest.test_case "torture: 300 seeded crash/reopen cycles" `Quick
        test_torture_300;
      Alcotest.test_case "fsync policy drives the sync counter" `Quick
        test_fsync_policy_counters;
      QCheck_alcotest.to_alcotest prop_torture_any_seed;
      QCheck_alcotest.to_alcotest prop_interval_presync_survives;
      QCheck_alcotest.to_alcotest prop_replay_recovers;
    ] )
