let () =
  Alcotest.run "tightspace"
    [
      Suite_value.suite;
      Suite_pset.suite;
      Suite_model.suite;
      Suite_protocols.suite;
      Suite_checker.suite;
      Suite_core.suite;
      Suite_objects.suite;
      Suite_linearize.suite;
      Suite_perturb.suite;
      Suite_mutex.suite;
      Suite_encoder.suite;
      Suite_leader.suite;
      Suite_kset_multi.suite;
      Suite_swap.suite;
      Suite_extras.suite;
      Suite_bakery_renaming.suite;
      Suite_props.suite;
      Suite_parallel.suite;
      Suite_fault.suite;
      Suite_runtime.suite;
      Suite_analysis.suite;
      Suite_obs.suite;
      Suite_service.suite;
      Suite_digest.suite;
    ]
