(* The packed-key + domain-parallel engine: parallel runs must be
   bit-identical to serial ones, and key packing must be injective. *)
open Ts_model
open Ts_checker
open Ts_protocols

(* --- differential: check_set_agreement serial vs domains:4 ------------- *)

let same_result name (a : Explore.result) (b : Explore.result) =
  Alcotest.(check bool) (name ^ ": same verdict") true (a.Explore.verdict = b.Explore.verdict);
  Alcotest.(check bool) (name ^ ": same stats") true (a.Explore.stats = b.Explore.stats)

let differential ?(k = 1) name proto ~inputs_list ~max_configs ~max_depth ~solo_budget
    ~check_solo () =
  let run domains =
    Explore.check_set_agreement ~domains ~k proto ~inputs_list ~max_configs ~max_depth
      ~solo_budget ~check_solo
  in
  same_result name (run 1) (run 4)

let test_diff_racing () =
  differential "racing-2" (Racing.make ~n:2)
    ~inputs_list:(Explore.binary_inputs 2) ~max_configs:3_000 ~max_depth:25
    ~solo_budget:60 ~check_solo:false ()

let test_diff_broken () =
  (* a violating protocol: the parallel fold must report the same first
     violation (in input order) as the serial early-exit *)
  differential "broken last-write-wins" (Broken.last_write_wins ~n:2)
    ~inputs_list:(Explore.binary_inputs 2) ~max_configs:10_000 ~max_depth:30
    ~solo_budget:50 ~check_solo:true ()

let test_diff_multivalued () =
  differential "multivalued-2x2"
    (Multivalued.make ~n:2 ~bits:2)
    ~inputs_list:[ [| Value.int 0; Value.int 3 |]; [| Value.int 2; Value.int 1 |] ]
    ~max_configs:3_000 ~max_depth:25 ~solo_budget:60 ~check_solo:false ()

let test_diff_kset () =
  differential ~k:2 "kset-3-2" (Kset.make ~n:3 ~k:2)
    ~inputs_list:(Explore.binary_inputs 3) ~max_configs:2_000 ~max_depth:20
    ~solo_budget:40 ~check_solo:false ()

(* --- differential: the valency oracle -------------------------------- *)

let test_diff_valency () =
  let proto = Racing.make ~n:2 in
  let inputs = [| Value.int 0; Value.int 1 |] in
  let run parallel =
    let t = Ts_core.Valency.create ~parallel proto ~horizon:30 in
    let i0 = Config.initial proto ~inputs in
    let verdicts =
      List.map
        (fun ps -> Ts_core.Valency.classify t i0 ps)
        [ Pset.singleton 0; Pset.singleton 1; Pset.all 2 ]
    in
    verdicts, Ts_core.Valency.stats t
  in
  let vs, ss = run false in
  let vp, sp = run true in
  Alcotest.(check bool) "same verdicts" true (vs = vp);
  Alcotest.(check bool) "same stats" true (ss = sp)

(* --- fault containment in the domain fan-out --------------------------- *)

exception Boom of int

let boom_at_multiples_of k x = if x mod k = 0 then raise (Boom x) else x * 10

let test_exception_ordering_matches_serial () =
  (* several items raise: the parallel map must surface the exception of
     the earliest item, exactly as a serial left-to-right map would *)
  let xs = [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ] in
  let observe run = match run () with _ -> None | exception Boom v -> Some v in
  let serial = observe (fun () -> List.map (boom_at_multiples_of 3) xs) in
  Alcotest.(check (option int)) "serial raises at 3" (Some 3) serial;
  List.iter
    (fun domains ->
      Alcotest.(check (option int))
        (Printf.sprintf "domains:%d raises the same" domains)
        serial
        (observe (fun () -> Par.map_list ~domains (boom_at_multiples_of 3) xs)))
    [ 1; 2; 4; 8 ]

let test_outcomes_keep_sibling_results () =
  let xs = [ 1; 2; 3; 4; 5; 6 ] in
  let expected =
    List.map
      (fun x -> match boom_at_multiples_of 3 x with v -> Ok v | exception e -> Error e)
      xs
  in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "domains:%d per-item outcomes" domains)
        true
        (Par.map_list_outcomes ~domains (boom_at_multiples_of 3) xs = expected))
    [ 1; 4 ]

let test_no_domain_leak_on_raise () =
  (* a raising worker must not leak its domain: after many raising rounds
     the runtime can still spawn fresh domains and map correctly *)
  for _ = 1 to 40 do
    (try ignore (Par.map_list ~domains:4 (boom_at_multiples_of 2) [ 1; 2; 3; 4 ])
     with Boom _ -> ());
    ignore (Par.map_list_outcomes ~domains:4 (boom_at_multiples_of 2) [ 1; 2; 3; 4 ])
  done;
  Alcotest.(check (list int)) "engine still healthy" [ 10; 30 ]
    (Par.map_list ~domains:4 (fun x -> x * 10) [ 1; 3 ]);
  let a, b = Par.both (fun () -> 1) (fun () -> 2) in
  Alcotest.(check (pair int int)) "both still healthy" (1, 2) (a, b)

let prop_outcomes_match_serial =
  QCheck.Test.make ~name:"par: map_list_outcomes = serial try/with" ~count:40
    QCheck.(pair (small_list small_int) (int_range 1 6))
    (fun (xs, domains) ->
      let f = boom_at_multiples_of 5 in
      let expected = List.map (fun x -> match f x with v -> Ok v | exception e -> Error e) xs in
      Par.map_list_outcomes ~domains f xs = expected)

(* --- the sharded result cache under multi-domain load ------------------ *)

(* Deterministic "engine work" stand-in keyed by a small key space, so
   hits, misses and evictions all occur (capacity < distinct keys). *)
let cache_key i = Ckey.of_string (Printf.sprintf "hammer-key-%d" (i mod 24))
let cache_value i = (i mod 24) * 1000 + String.length "hammer"

let test_cache_hammer () =
  let cache = Ts_core.Cache.create ~shards:4 ~name:"hammer" ~capacity:16 () in
  Trace.start ();
  let outcomes =
    Par.map_list ~domains:4
      (fun d ->
        List.init 120 (fun j ->
            let i = (d * 31) + j in
            let got =
              Ts_core.Cache.value
                (Ts_core.Cache.find_or_compute cache (cache_key i) (fun () ->
                     cache_value i))
            in
            got = cache_value i))
      [ 0; 1; 2; 3 ]
  in
  let events = Trace.stop () in
  (* every answer — fresh, cached or recomputed-after-eviction — equals
     the uncached recomputation *)
  Alcotest.(check bool) "all values correct under contention" true
    (List.for_all (List.for_all Fun.id) outcomes);
  let stats = Ts_core.Cache.stats cache in
  Alcotest.(check int) "every lookup accounted" 480
    (stats.Ts_core.Cache.hits + stats.Ts_core.Cache.misses);
  Alcotest.(check bool) "hits happened" true (stats.Ts_core.Cache.hits > 0);
  Alcotest.(check bool) "evictions happened (capacity < key space)" true
    (stats.Ts_core.Cache.evictions > 0);
  Alcotest.(check bool) "capacity respected" true
    (stats.Ts_core.Cache.entries <= 16);
  (* the cache's shard accesses feed the same detector that certifies the
     engine: the hammer log must replay race-free *)
  let report = Ts_analysis.Race.check events in
  Alcotest.(check bool) "cache shards logged accesses" true
    (report.Ts_analysis.Race.accesses > 0);
  Alcotest.(check bool) "cache hammer race-free" true
    (Ts_analysis.Race.race_free report)

(* --- the service path under the race detector ------------------------- *)

(* PR-3 extension: the event-loop mailbox (self-pipe posting) and the
   cache -> store write-through now log accesses.  Drive a store-backed
   daemon from concurrent clients — certified witness queries, so the
   answer path crosses cert emission, the cache and the store append —
   and certify the whole run race-free. *)
let test_service_store_race_free () =
  let module Server = Ts_service.Server in
  let module Client = Ts_service.Client in
  let module Request = Ts_service.Request in
  let path = Filename.temp_file "tightspace-race" ".log" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Trace.start ();
  let events =
    let server =
      Server.start
        { Server.default_config with Server.port = 0; store_path = Some path }
    in
    Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
    let port = Server.port server in
    let answers =
      Par.map_list ~domains:3
        (fun d ->
          let conn = Client.connect_exn ~port () in
          Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
          (* repeats included: the second round must hit cache/store *)
          List.init 4 (fun j ->
              let req =
                { Request.defaults with
                  Request.op = Request.Witness;
                  n = 2;
                  id = (d * 10) + j;
                  certificate = true }
              in
              match Client.rpc conn (Request.to_json req) with
              | Ok doc ->
                Ts_analysis.Json.member "ok" doc
                = Some (Ts_analysis.Json.Bool true)
              | Error _ -> false))
        [ 0; 1; 2 ];
    in
    Alcotest.(check bool) "every certified query answered" true
      (List.for_all (List.for_all Fun.id) answers);
    Trace.stop ()
  in
  let report = Ts_analysis.Race.check events in
  Alcotest.(check bool) "accesses logged" true
    (report.Ts_analysis.Race.accesses > 0);
  let touched prefix =
    List.exists
      (function
        | Trace.Access { loc; _ } ->
          String.length loc >= String.length prefix
          && String.sub loc 0 (String.length prefix) = prefix
        | _ -> false)
      events
  in
  Alcotest.(check bool) "evloop mailbox instrumented" true
    (touched "evloop.mailbox");
  Alcotest.(check bool) "store log instrumented" true (touched "store.log");
  Alcotest.(check bool) "service + store race-free" true
    (Ts_analysis.Race.race_free report)

(* --- qcheck: key packing is injective on reachable configurations ----- *)

(* Random walk from random binary inputs; collects the visited configs. *)
let random_configs proto ~n ~seed ~steps =
  let rng = Rng.create seed in
  let inputs = Array.init n (fun _ -> Value.int (Rng.int rng 2)) in
  let cfg = ref (Config.initial proto ~inputs) in
  let acc = ref [ !cfg ] in
  (try
     for _ = 1 to steps do
       let alive =
         List.filter (fun p -> Config.has_decided !cfg p = None) (List.init n Fun.id)
       in
       if alive = [] then raise Exit;
       let p = List.nth alive (Rng.int rng (List.length alive)) in
       let coin =
         match Config.poised proto !cfg p with
         | Some Action.Flip -> Some (Rng.bool rng)
         | _ -> None
       in
       cfg := fst (Config.step proto !cfg p ~coin);
       acc := !cfg :: !acc
     done
   with Exit -> ());
  !acc

(* Config.equal a b  <=>  Ckey.equal (pack a) (pack b), and equal keys have
   equal hashes.  Two independent walks so unequal pairs actually occur. *)
let prop_pack_injective name proto ~n =
  QCheck.Test.make ~name:("ckey: packing injective on " ^ name) ~count:30
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let pk = Ckey.packer proto in
      let cs =
        random_configs proto ~n ~seed:s1 ~steps:25
        @ random_configs proto ~n ~seed:(s2 + 1000) ~steps:25
      in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let ka = Ckey.pack pk a and kb = Ckey.pack pk b in
              let same_cfg = Config.equal a b and same_key = Ckey.equal ka kb in
              same_cfg = same_key && (not same_key || Ckey.hash ka = Ckey.hash kb))
            cs)
        cs)

let qcheck_cases =
  List.map
    (fun t -> QCheck_alcotest.to_alcotest ~verbose:false t)
    [
      prop_pack_injective "racing-2" (Racing.make ~n:2) ~n:2;
      prop_pack_injective "broken-lww-2" (Broken.last_write_wins ~n:2) ~n:2;
      prop_pack_injective "multivalued-2x2" (Multivalued.make ~n:2 ~bits:2) ~n:2;
      prop_pack_injective "kset-3-2" (Kset.make ~n:3 ~k:2) ~n:3;
      prop_outcomes_match_serial;
    ]

let suite =
  ( "parallel-engine",
    [
      Alcotest.test_case "serial = parallel: racing" `Quick test_diff_racing;
      Alcotest.test_case "serial = parallel: broken" `Quick test_diff_broken;
      Alcotest.test_case "serial = parallel: multivalued" `Quick test_diff_multivalued;
      Alcotest.test_case "serial = parallel: k-set" `Quick test_diff_kset;
      Alcotest.test_case "serial = parallel: valency oracle" `Quick test_diff_valency;
      Alcotest.test_case "exception ordering matches serial" `Quick
        test_exception_ordering_matches_serial;
      Alcotest.test_case "outcomes keep sibling results" `Quick
        test_outcomes_keep_sibling_results;
      Alcotest.test_case "no domain leak on raise" `Quick test_no_domain_leak_on_raise;
      Alcotest.test_case "cache hammer: 4 domains, race-free, correct" `Quick
        test_cache_hammer;
      Alcotest.test_case "store-backed service: race-free, instrumented" `Quick
        test_service_store_race_free;
    ]
    @ qcheck_cases )
