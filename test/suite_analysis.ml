(* The analyzer subsystem: footprint lint, determinism/purity replay,
   vector-clock race detection, and the gating driver.  The negative
   controls matter as much as the clean runs: an analyzer that cannot flag
   a planted defect certifies nothing. *)

open Ts_model
open Ts_analysis

let rw_det = { Lint.binary_decides = true; may_swap = false; may_flip = false }
let has_error ~code fs =
  List.exists (fun f -> f.Finding.severity = Finding.Error && f.Finding.code = code) fs
let binary2 = Ts_checker.Explore.binary_inputs 2

(* lint *)

let lint_racing_clean () =
  let fs, s = Lint.run rw_det (Ts_protocols.Racing.make ~n:2) ~inputs_list:binary2 in
  Alcotest.(check (list string)) "no errors" []
    (List.map (fun f -> f.Finding.code) (Finding.errors fs));
  Alcotest.(check bool) "decides reachable" true s.Lint.decide_reachable;
  Alcotest.(check int) "racing touches all 2n registers" 4 s.Lint.registers_touched;
  Alcotest.(check bool) "reads seen" true (s.Lint.reads > 0);
  Alcotest.(check bool) "within declared range" true (s.Lint.max_register < 4)

let lint_rogue_flagged () =
  let fs, s =
    Lint.run rw_det (Ts_protocols.Broken.rogue_writer ~n:2) ~inputs_list:binary2
  in
  Alcotest.(check bool) "out-of-range caught" true
    (has_error ~code:"register-out-of-range" fs);
  (* the stray write is observed but never stepped *)
  Alcotest.(check int) "lint saw register 1" 1 s.Lint.max_register

let lint_const_flagged () =
  let fs, _ =
    Lint.run rw_det (Ts_protocols.Broken.oblivious_seven ~n:2) ~inputs_list:binary2
  in
  Alcotest.(check bool) "non-binary decide caught" true
    (has_error ~code:"nonbinary-decide" fs)

let lint_spin_unreachable_decide () =
  let fs, s =
    Lint.run rw_det (Ts_protocols.Broken.insomniac ~n:2) ~inputs_list:binary2
  in
  Alcotest.(check bool) "exhaustive enumeration" false s.Lint.truncated;
  Alcotest.(check bool) "decision-unreachable is an error" true
    (has_error ~code:"decision-unreachable" fs)

let lint_swap_outside_claims () =
  (* swap consensus analyzed under read/write-only claims: the historyless
     primitive must be flagged as outside the declared model *)
  let fs, _ =
    Lint.run rw_det (Ts_protocols.Swap_consensus.two_process ()) ~inputs_list:binary2
  in
  Alcotest.(check bool) "swap outside read/write claims" true
    (has_error ~code:"primitive-outside-model" fs);
  let fs', _ =
    Lint.run { rw_det with may_swap = true }
      (Ts_protocols.Swap_consensus.two_process ()) ~inputs_list:binary2
  in
  Alcotest.(check int) "clean under historyless claims" 0
    (List.length (Finding.errors fs'))

let lint_undeclared_flip () =
  let fs, _ =
    Lint.run rw_det (Ts_protocols.Racing.make_randomized ~n:2) ~inputs_list:binary2
  in
  Alcotest.(check bool) "undeclared flip caught" true
    (has_error ~code:"undeclared-flip" fs)

(* determinism: fixtures with planted impurities *)

type counter_state = { input : int; ticks : int }

(* Hidden mutable state shared across all processes and all replays: the
   canonical impurity the shadow-store replay must catch. *)
let hidden_ref_protocol () : counter_state Protocol.t =
  let hidden = ref 0 in
  {
    Protocol.name = "fixture-hidden-ref";
    description = "reads a ref outside the configuration";
    num_processes = 2;
    num_registers = 1;
    init = (fun ~pid:_ ~input -> { input = Value.to_int input; ticks = 0 });
    poised =
      (fun s ->
        if s.ticks >= 2 then Action.Decide (Value.int s.input)
        else Action.Write (0, Value.int !hidden));
    on_read = (fun s _ -> s);
    on_write =
      (fun s ->
        incr hidden;
        { s with ticks = s.ticks + 1 });
    on_swap = (fun s _ -> s);
    on_flip = Protocol.no_flip;
    pp_state = (fun ppf s -> Fmt.pf ppf "{%d,%d}" s.input s.ticks);
    encode = Protocol.Generic;
  }

let unstable_poised_protocol () : counter_state Protocol.t =
  let flip_flop = ref false in
  {
    Protocol.name = "fixture-unstable-poised";
    description = "poised observation mutates hidden state";
    num_processes = 2;
    num_registers = 1;
    init = (fun ~pid:_ ~input -> { input = Value.to_int input; ticks = 0 });
    poised =
      (fun s ->
        flip_flop := not !flip_flop;
        if !flip_flop then Action.Read 0 else Action.Decide (Value.int s.input));
    on_read = (fun s _ -> { s with ticks = s.ticks + 1 });
    on_write = (fun s -> s);
    on_swap = (fun s _ -> s);
    on_flip = Protocol.no_flip;
    pp_state = (fun ppf s -> Fmt.pf ppf "{%d,%d}" s.input s.ticks);
    encode = Protocol.Generic;
  }

let determinism_racing_clean () =
  let fs = Determinism.run (Ts_protocols.Racing.make ~n:2) ~inputs_list:binary2 in
  Alcotest.(check (list string)) "no findings" [] (List.map (fun f -> f.Finding.code) fs)

let determinism_randomized_clean () =
  (* declared coins are not hidden nondeterminism *)
  let fs =
    Determinism.run (Ts_protocols.Racing.make_randomized ~n:2) ~inputs_list:binary2
  in
  Alcotest.(check (list string)) "no findings" [] (List.map (fun f -> f.Finding.code) fs)

let determinism_hidden_ref () =
  let fs = Determinism.run (hidden_ref_protocol ()) ~inputs_list:binary2 in
  Alcotest.(check bool) "hidden ref caught" true
    (has_error ~code:"hidden-nondeterminism" fs || has_error ~code:"impure-transition" fs)

let determinism_unstable_poised () =
  let fs = Determinism.run (unstable_poised_protocol ()) ~inputs_list:binary2 in
  Alcotest.(check bool) "unstable poised caught" true
    (has_error ~code:"unstable-poised" fs)

(* race detector on hand-built logs *)

let acc ~d ~loc ?(atomic = false) kind =
  Trace.Access { domain = d; loc; kind; atomic }

let race_unordered_writes () =
  (* two domains, no fork/join edges: concurrent plain writes must race *)
  let r =
    Race.check [ acc ~d:0 ~loc:"x" Trace.Write; acc ~d:1 ~loc:"x" Trace.Write ]
  in
  Alcotest.(check bool) "race reported" false (Race.race_free r);
  Alcotest.(check int) "one race on x" 1 (List.length r.Race.races);
  let rc = List.hd r.Race.races in
  Alcotest.(check string) "location" "x" rc.Race.loc

let race_fork_join_orders () =
  (* parent writes, forks; child writes; joins; parent writes again:
     every pair is ordered by the fork/join edges — no race *)
  let r =
    Race.check
      [
        acc ~d:0 ~loc:"x" Trace.Write;
        Trace.Fork { parent = 0; token = 1 };
        Trace.Begin { child = 1; token = 1 };
        acc ~d:1 ~loc:"x" Trace.Write;
        Trace.End { child = 1; token = 1 };
        Trace.Join { parent = 0; token = 1 };
        acc ~d:0 ~loc:"x" Trace.Write;
      ]
  in
  Alcotest.(check bool) "fork/join is happens-before" true (Race.race_free r)

let race_fork_without_join () =
  (* the parent's access after Fork is concurrent with the child's *)
  let r =
    Race.check
      [
        Trace.Fork { parent = 0; token = 1 };
        Trace.Begin { child = 1; token = 1 };
        acc ~d:1 ~loc:"x" Trace.Write;
        acc ~d:0 ~loc:"x" Trace.Write;
      ]
  in
  Alcotest.(check bool) "unjoined child races parent" false (Race.race_free r)

let race_atomics_do_not_race () =
  let r =
    Race.check
      [
        acc ~d:0 ~loc:"c" ~atomic:true Trace.Write;
        acc ~d:1 ~loc:"c" ~atomic:true Trace.Write;
        acc ~d:2 ~loc:"c" ~atomic:true Trace.Read;
      ]
  in
  Alcotest.(check bool) "atomic-atomic pairs are synchronized" true (Race.race_free r);
  (* but a plain access against an atomic write still races *)
  let r' =
    Race.check
      [ acc ~d:0 ~loc:"c" ~atomic:true Trace.Write; acc ~d:1 ~loc:"c" Trace.Read ]
  in
  Alcotest.(check bool) "plain read vs atomic write races" false (Race.race_free r')

let race_reads_do_not_race () =
  let r =
    Race.check [ acc ~d:0 ~loc:"x" Trace.Read; acc ~d:1 ~loc:"x" Trace.Read ]
  in
  Alcotest.(check bool) "read-read never races" true (Race.race_free r)

let race_planted_caught () =
  let r = Race.planted () in
  Alcotest.(check bool) "planted race caught" false (Race.race_free r);
  Alcotest.(check bool) "at least two domains observed" true (r.Race.domains >= 2)

let race_engine_certified () =
  let r = Race.certify_engine ~domains:3 () in
  Alcotest.(check bool) "parallel search race-free" true (Race.race_free r);
  Alcotest.(check bool) "workers actually traced" true (r.Race.domains >= 2);
  Alcotest.(check bool) "shared structures observed" true (r.Race.locations >= 3)

let trace_disarmed_is_free () =
  (* instrumentation must be inert when tracing is off *)
  Trace.access ~loc:"x" Trace.Write ~atomic:false;
  Trace.start ();
  let log = Trace.stop () in
  Alcotest.(check int) "no events leak from disarmed periods" 0 (List.length log)

(* driver *)

let analyze_flags_every_broken () =
  let o = Analyze.analyze_all () in
  List.iter
    (fun (r : Analyze.protocol_report) ->
      let name = r.Analyze.entry.Registry.cli_name in
      Alcotest.(check bool) (name ^ " meets expectation") true r.Analyze.ok;
      if not r.Analyze.entry.Registry.expect_clean then
        Alcotest.(check bool) (name ^ " flagged") true r.Analyze.flagged)
    o.Analyze.reports;
  Alcotest.(check bool) "engine certified" true (Race.race_free o.Analyze.engine);
  Alcotest.(check bool) "planted caught" false (Race.race_free o.Analyze.planted);
  Alcotest.(check bool) "overall gate passes" true o.Analyze.ok

(* Registry <-> catalog lockstep: every consensus protocol the CLI can
   name is analyzed by the gate, and every gate entry is reachable from
   the CLI.  A protocol added to lib/protocols without a registry entry
   must fail analyze --all loudly, not slip through unanalyzed. *)
let registry_catalog_lockstep () =
  let sorted l = List.sort compare l in
  Alcotest.(check (list string)) "registry = catalog"
    (sorted (Ts_protocols.Catalog.names ()))
    (sorted (Ts_analysis.Registry.names ()));
  let o = Analyze.analyze_all ~domains:1 () in
  Alcotest.(check (list string)) "no uncataloged entries" [] o.Analyze.uncataloged;
  Alcotest.(check (list string)) "no unregistered protocols" [] o.Analyze.unregistered

let json_escaping () =
  Alcotest.(check string) "escapes" {|{"k":"a\"b\\c\n\u0007"}|}
    (Json.to_string (Json.Obj [ "k", Json.Str "a\"b\\c\n\007" ]))

(* Par.outcomes_array's option strip: unreachable through the public API,
   so covered through the documented testing hook. *)
let par_strip_slot () =
  Alcotest.(check int) "present slot passes through" 7
    (Par.Internal.strip_slot 3 (Some 7));
  Alcotest.check_raises "missing slot names itself"
    (Invalid_argument
       "Par.outcomes_array: no outcome for item 3: a worker slot went missing \
        during stride reassembly")
    (fun () -> ignore (Par.Internal.strip_slot 3 None))

let suite =
  ( "analysis",
    [
      Alcotest.test_case "lint: racing clean, sane summary" `Quick lint_racing_clean;
      Alcotest.test_case "lint: rogue writer flagged" `Quick lint_rogue_flagged;
      Alcotest.test_case "lint: non-binary decide flagged" `Quick lint_const_flagged;
      Alcotest.test_case "lint: insomniac can never decide" `Quick
        lint_spin_unreachable_decide;
      Alcotest.test_case "lint: swap outside read/write claims" `Quick
        lint_swap_outside_claims;
      Alcotest.test_case "lint: undeclared coin flip" `Quick lint_undeclared_flip;
      Alcotest.test_case "determinism: racing clean" `Quick determinism_racing_clean;
      Alcotest.test_case "determinism: declared coins clean" `Quick
        determinism_randomized_clean;
      Alcotest.test_case "determinism: hidden ref caught" `Quick determinism_hidden_ref;
      Alcotest.test_case "determinism: unstable poised caught" `Quick
        determinism_unstable_poised;
      Alcotest.test_case "race: unordered writes race" `Quick race_unordered_writes;
      Alcotest.test_case "race: fork/join edges order" `Quick race_fork_join_orders;
      Alcotest.test_case "race: unjoined child races" `Quick race_fork_without_join;
      Alcotest.test_case "race: atomics synchronize" `Quick race_atomics_do_not_race;
      Alcotest.test_case "race: reads never race" `Quick race_reads_do_not_race;
      Alcotest.test_case "race: planted fixture caught" `Quick race_planted_caught;
      Alcotest.test_case "race: engine certified race-free" `Quick race_engine_certified;
      Alcotest.test_case "trace: disarmed logging is inert" `Quick trace_disarmed_is_free;
      Alcotest.test_case "analyze: registry/catalog lockstep" `Slow
        registry_catalog_lockstep;
      Alcotest.test_case "analyze: gate matches every expectation" `Slow
        analyze_flags_every_broken;
      Alcotest.test_case "json: string escaping" `Quick json_escaping;
      Alcotest.test_case "par: strip_slot guard" `Quick par_strip_slot;
    ] )
