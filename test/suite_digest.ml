(* Cache-key digest stability.

   The service cache and every Ckey-keyed table identify engine answers by
   packed-configuration digests.  Those digests are pure functions of the
   component encodings (Ckey's varints, Value.encode, protocol state
   encoders) and of Dispatch's request packing — so any change to an
   encoding silently REKEYS EVERY CACHE without anyone noticing, unless a
   test pins the bytes.  This suite pins them: golden hex digests for

     - the packed initial configuration of every registry protocol, and
     - the service cache key of a canonical witness request per catalog
       name.

   If a check here fails and the encoding change is intentional, bump
   Ts_service.Dispatch.cache_version and refresh the goldens below —
   stale cache entries from older builds must not be served under the new
   encoding. *)

open Ts_model
module Registry = Ts_analysis.Registry
module Dispatch = Ts_service.Dispatch
module Request = Ts_service.Request
module Store = Ts_store.Store

let bump_hint = "digest changed — bump Ts_service.Dispatch.cache_version and refresh goldens: "
let store_bump_hint = "on-disk layout changed — bump Ts_store.Store.store_version and refresh goldens: "

(* Golden digests of Config.initial over each registry entry's first
   declared input vector. *)
let config_goldens =
  [
    ("racing", "52000053000000000052020053000000000000000000");
    ("racing-rand", "52000053000000000052020053000000000000000000");
    ("swap", "52530052530000");
    ("kset", "520000005300000000005200080053000000000052020000530000000000000000000000");
    ("multivalued", "5200000050520200005000000000000000000000");
    ("swap-chain", "52530052530052530000");
    ("broken-lww", "524c0000524c000000");
    ("broken-max", "524d00000000524d020000000000");
    ("broken-const", "52430e52430e00");
    ("broken-spin", "525a525a00");
    ("broken-wait", "52410000524102000000");
    ("broken-rogue", "525200005252000000");
    ("broken-scribbler", "524200003052420200300000");
  ]

(* Golden service cache keys for a default witness request per catalog
   name ([n] = 2 where the protocol requires it, else 3).  Regenerated at
   cache_version 2, which added the certificate flag to the key. *)
let request_goldens =
  [
    ("racing", "040e7769746e6573730c726163696e670601d41fc0a90750d804020200");
    ("racing-rand", "040e7769746e65737316726163696e672d72616e640601d41fc0a90750d804020200");
    ("swap", "040e7769746e65737308737761700401d41fc0a90750d804020200");
    ("kset", "040e7769746e657373086b7365740601d41fc0a90750d804020200");
    ("multivalued", "040e7769746e657373166d756c746976616c7565640601d41fc0a90750d804020200");
    ("swap-chain", "040e7769746e65737314737761702d636861696e0601d41fc0a90750d804020200");
    ("broken-lww", "040e7769746e6573731462726f6b656e2d6c77770601d41fc0a90750d804020200");
    ("broken-max", "040e7769746e6573731462726f6b656e2d6d61780601d41fc0a90750d804020200");
    ("broken-const", "040e7769746e6573731862726f6b656e2d636f6e73740601d41fc0a90750d804020200");
    ("broken-spin", "040e7769746e6573731662726f6b656e2d7370696e0601d41fc0a90750d804020200");
    ("broken-wait", "040e7769746e6573731662726f6b656e2d776169740601d41fc0a90750d804020200");
    ("broken-rogue", "040e7769746e6573731862726f6b656e2d726f6775650601d41fc0a90750d804020200");
    ("broken-scribbler", "040e7769746e6573732062726f6b656e2d7363726962626c65720601d41fc0a90750d804020200");
  ]

let config_digest (e : Registry.entry) =
  match e.Registry.protocol with
  | Protocol.Packed proto ->
    let inputs =
      match e.Registry.inputs_list with
      | inputs :: _ -> inputs
      | [] -> Alcotest.failf "%s: registry entry declares no inputs" e.Registry.cli_name
    in
    Ckey.to_hex (Ckey.pack (Ckey.packer proto) (Config.initial proto ~inputs))

let test_version_pinned () =
  (* when this fails you bumped the version: refresh every golden here *)
  Alcotest.(check int) "Dispatch.cache_version matches the goldens" 2
    Dispatch.cache_version

let test_registry_covered () =
  let names = List.map (fun (e : Registry.entry) -> e.Registry.cli_name) (Registry.all ()) in
  Alcotest.(check (list string)) "every registry entry has a golden digest"
    names (List.map fst config_goldens)

let test_config_digests () =
  List.iter
    (fun (name, golden) ->
      match Registry.find name with
      | None -> Alcotest.failf "golden names unknown registry entry %s" name
      | Some e ->
        Alcotest.(check string) (bump_hint ^ "initial config of " ^ name) golden
          (config_digest e))
    config_goldens

let test_catalog_covered () =
  Alcotest.(check (list string)) "every catalog name has a request golden"
    (Ts_protocols.Catalog.names ())
    (List.map fst request_goldens)

let test_request_digests () =
  List.iter
    (fun (name, golden) ->
      let n = if name = "swap" then 2 else 3 in
      let req = { Request.defaults with Request.op = Request.Witness; protocol = name; n } in
      Alcotest.(check string) (bump_hint ^ "witness request on " ^ name) golden
        (Dispatch.cache_key_hex req))
    request_goldens

let test_request_digest_sensitivity () =
  (* the key must react to every result-determining field and to none of
     the budget fields *)
  let base = { Request.defaults with Request.op = Request.Check } in
  let key r = Dispatch.cache_key_hex r in
  let differs name r =
    Alcotest.(check bool) (name ^ " changes the digest") false (key base = key r)
  in
  differs "op" { base with Request.op = Request.Resilient };
  differs "protocol" { base with Request.protocol = "swap-chain" };
  differs "n" { base with Request.n = base.Request.n + 1 };
  differs "horizon" { base with Request.horizon = Some 17 };
  differs "seed" { base with Request.seed = base.Request.seed + 1 };
  differs "max_configs" { base with Request.max_configs = 123 };
  differs "max_depth" { base with Request.max_depth = 7 };
  differs "solo_budget" { base with Request.solo_budget = 11 };
  differs "check_solo" { base with Request.check_solo = not base.Request.check_solo };
  differs "t_faults" { base with Request.t_faults = 2 };
  differs "certificate" { base with Request.certificate = true };
  Alcotest.(check string) "deadline is NOT cache-key material (partials are never cached)"
    (key base)
    (key { base with Request.deadline = Some 1.0 });
  Alcotest.(check string) "max_nodes is NOT cache-key material" (key base)
    (key { base with Request.max_nodes = Some 99 });
  Alcotest.(check string) "id is NOT cache-key material" (key base)
    (key { base with Request.id = 424242 })

(* The witness log's byte layout is cache-key discipline extended to disk:
   a log written by one build must be readable (or loudly refused) by the
   next.  [header_bytes] and [record_bytes] are pure functions of the
   format, so pinning their hex pins the layout; any intentional change
   must bump Store.store_version so old logs are refused, not misread. *)

let hex s =
  String.concat ""
    (List.map
       (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.init (String.length s) (String.get s)))

(* The certificate header is wire format too: auditors parse it with
   checkers built from docs/CERTIFICATES.md, not from this tree.  If this
   fails and the change is intentional, bump Ts_cert.Cert.cert_version
   (and Ts_microcheck.Microcheck.supported_cert_version with it) and
   refresh the golden. *)
let cert_bump_hint =
  "certificate serialization changed — bump Ts_cert.Cert.cert_version and \
   Microcheck.supported_cert_version, then refresh: "

let test_cert_header_golden () =
  let proto = Ts_protocols.Racing.make ~n:2 in
  match Ts_core.Theorem.theorem1_escalate proto ~initial_horizon:8 with
  | Ts_core.Theorem.Complete c, _ ->
    let s = Ts_cert.Cert.to_string (Ts_cert.Cert.of_theorem proto c) in
    Alcotest.(check string) (cert_bump_hint ^ "header")
      ({|{"cert_version":1,"kind":"space_bound","protocol":{"name":"racing-2",|}
       ^ {|"n":2,"registers":4},"inputs":[0,1],"schedule":[{"p|})
      (String.sub s 0 120);
    Alcotest.(check int) (cert_bump_hint ^ "racing-2 certificate length") 941
      (String.length s)
  | Ts_core.Theorem.Partial _, _ ->
    Alcotest.fail "racing n=2 Theorem 1 should complete unbudgeted"

let test_store_version_pinned () =
  Alcotest.(check int) "Store.store_version matches the goldens" 1
    Store.store_version

let test_store_header_bytes () =
  Alcotest.(check string) (store_bump_hint ^ "file header")
    "54535749544c4f470100000000000000"
    (hex Store.header_bytes)

let test_store_record_bytes () =
  (* pins the full record framing: LE u32 lengths, zlib-compatible CRC-32
     over lengths‖key‖value, then the raw payloads *)
  Alcotest.(check string) (store_bump_hint ^ "record encoding")
    "010000000d0000006bcc9ae26b7b22706f6e67223a747275657d"
    (hex (Store.record_bytes ~key:"k" ~value:"{\"pong\":true}"))

let suite =
  ( "digest-stability",
    [
      Alcotest.test_case "cache_version pinned to goldens" `Quick test_version_pinned;
      Alcotest.test_case "every registry entry covered" `Quick test_registry_covered;
      Alcotest.test_case "initial-config digests" `Quick test_config_digests;
      Alcotest.test_case "every catalog name covered" `Quick test_catalog_covered;
      Alcotest.test_case "witness-request cache keys" `Quick test_request_digests;
      Alcotest.test_case "key sensitivity (and budget exclusion)" `Quick
        test_request_digest_sensitivity;
      Alcotest.test_case "store_version pinned to goldens" `Quick
        test_store_version_pinned;
      Alcotest.test_case "store file header bytes" `Quick test_store_header_bytes;
      Alcotest.test_case "store record encoding bytes" `Quick
        test_store_record_bytes;
      Alcotest.test_case "certificate header golden" `Quick
        test_cert_header_golden;
    ] )
