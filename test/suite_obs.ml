(* The observability subsystem: span nesting and ordering, the
   allocation-free disabled path, exporter well-formedness, the
   Engine_log/Trace unification, and — the load-bearing guarantee — a
   differential proof that arming the profiler changes nothing about what
   the engine computes. *)

open Ts_model
open Ts_core
module Obs = Ts_obs.Obs
module Export = Ts_obs.Export

(* --- a minimal validating JSON reader ---------------------------------
   The exporters emit JSON by hand; this strict RFC-8259-shaped validator
   is the independent check that the output really parses.  Values are
   not materialised — only structure is verified. *)

exception Bad_json of string

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let bad what = raise (Bad_json (Printf.sprintf "%s at offset %d" what !pos)) in
  let peek () = if !pos >= n then bad "unexpected end" else s.[!pos] in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c = if peek () <> c then bad (Printf.sprintf "expected '%c'" c) else advance () in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
         | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> advance ()
         | 'u' ->
           advance ();
           for _ = 1 to 4 do
             (match peek () with
              | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> advance ()
              | _ -> bad "bad \\u escape")
           done
         | _ -> bad "bad escape");
        go ()
      | c when Char.code c < 0x20 -> bad "raw control char in string"
      | _ -> advance (); go ()
    in
    go ()
  in
  let number () =
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    if not (num_char (peek ())) then bad "number";
    while !pos < n && num_char s.[!pos] do advance () done
  in
  let lit w = String.iter (fun c -> if peek () <> c then bad w else advance ()) w in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> string_lit ()
    | 't' -> lit "true"
    | 'f' -> lit "false"
    | 'n' -> lit "null"
    | '-' | '0' .. '9' -> number ()
    | _ -> bad "unexpected character"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | ',' -> advance (); members ()
        | '}' -> advance ()
        | _ -> bad "expected ',' or '}'"
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then advance ()
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | ',' -> advance (); elems ()
        | ']' -> advance ()
        | _ -> bad "expected ',' or ']'"
      in
      elems ()
  in
  value ();
  skip_ws ();
  if !pos <> n then bad "trailing garbage"

let check_valid_json what s =
  match validate_json s with
  | () -> ()
  | exception Bad_json m -> Alcotest.failf "%s: invalid JSON: %s" what m

let has_span name evs =
  List.exists
    (function Obs.Span_open { name = n'; _ } -> String.equal n' name | _ -> false)
    evs

(* --- spans ------------------------------------------------------------- *)

let span_nesting () =
  let evs =
    Obs.start_tracing ();
    let a = Obs.enter ~cat:"test" "outer" in
    let b = Obs.enter ~cat:"test" "inner" in
    Obs.set_int b "x" 7;
    Obs.close b;
    let c = Obs.enter ~cat:"test" "sibling" in
    Obs.close c;
    Obs.close a;
    Obs.stop_tracing ()
  in
  match evs with
  | [ Obs.Span_open { id = ida; parent = pa; name = na; t = ta; _ };
      Obs.Span_open { id = idb; parent = pb; name = nb; t = tb; _ };
      Obs.Span_close { id = cb; t = tcb; attrs };
      Obs.Span_open { id = idc; parent = pc; name = nc; _ };
      Obs.Span_close { id = cc; _ };
      Obs.Span_close { id = ca; t = tca; _ } ] ->
    Alcotest.(check string) "outer opens first" "outer" na;
    Alcotest.(check string) "inner opens second" "inner" nb;
    Alcotest.(check string) "sibling opens third" "sibling" nc;
    Alcotest.(check int) "outer is a root span" (-1) pa;
    Alcotest.(check bool) "inner's parent is outer" true (pb = ida);
    Alcotest.(check bool) "sibling's parent is outer again" true (pc = ida);
    Alcotest.(check bool) "closes match their opens" true
      (cb = idb && cc = idc && ca = ida);
    Alcotest.(check bool) "timestamps are monotone" true
      (ta <= tb && tb <= tcb && tcb <= tca);
    (match attrs with
     | [ ("x", Obs.Int 7) ] -> ()
     | _ -> Alcotest.fail "inner span lost its attribute")
  | _ -> Alcotest.failf "unexpected event shape (%d events)" (List.length evs)

let span_disabled_noop () =
  Alcotest.(check bool) "tracing starts disarmed" false (Obs.tracing ());
  let sp = Obs.enter ~cat:"test" "ghost" in
  Alcotest.(check bool) "disarmed enter returns the null span" true (sp == Obs.null_span);
  Obs.set_int sp "k" 1;
  Obs.close sp;
  Alcotest.(check int) "nothing was buffered" 0 (List.length (Obs.stop_tracing ()));
  (* the disabled path must stay off the minor heap: a hot loop of probes
     may not allocate (a handful of words for the Gc probe itself aside) *)
  let before = Gc.minor_words () in
  for i = 0 to 9_999 do
    let sp = Obs.enter ~cat:"valency" "valency.search" in
    Obs.set_int sp "nodes" i;
    Obs.set_bool sp "decided" true;
    Obs.close sp;
    Obs.Metrics.incr "valency.searches";
    Obs.Metrics.gauge_max "valency.peak_frontier" i
  done;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "disabled path allocates nothing (%.0f words)" delta)
    true (delta < 256.0)

(* --- differential: tracing must not change what the engine computes ---- *)

let differential_theorem () =
  let run traced =
    let proto = Ts_protocols.Racing.make ~n:2 in
    let t = Valency.create proto ~horizon:40 in
    if traced then begin
      Obs.start_tracing ();
      Obs.Metrics.start ()
    end;
    let cert = Theorem.theorem1 t in
    let events = if traced then Obs.stop_tracing () else [] in
    if traced then ignore (Obs.Metrics.stop ());
    cert, Valency.stats t, events
  in
  let cert_u, stats_u, _ = run false in
  let cert_t, stats_t, events = run true in
  Alcotest.(check int) "searches identical" stats_u.Valency.searches stats_t.Valency.searches;
  Alcotest.(check int) "nodes expanded identical" stats_u.Valency.nodes_expanded
    stats_t.Valency.nodes_expanded;
  Alcotest.(check int) "memo hits identical" stats_u.Valency.memo_hits
    stats_t.Valency.memo_hits;
  Alcotest.(check int) "memo misses identical" stats_u.Valency.memo_misses
    stats_t.Valency.memo_misses;
  Alcotest.(check int) "peak frontier identical" stats_u.Valency.peak_frontier
    stats_t.Valency.peak_frontier;
  Alcotest.(check int) "witness schedule identical length"
    (List.length cert_u.Theorem.trace) (List.length cert_t.Theorem.trace);
  Alcotest.(check (list int)) "registers written identical"
    cert_u.Theorem.registers_written cert_t.Theorem.registers_written;
  Alcotest.(check bool) "and the traced run recorded its spans" true
    (has_span "theorem1" events)

let differential_explore () =
  let workload () =
    Ts_checker.Explore.check_consensus
      (Ts_protocols.Broken.last_write_wins ~n:2)
      ~inputs_list:(Ts_checker.Explore.binary_inputs 2)
      ~max_configs:10_000 ~max_depth:30 ~solo_budget:50 ~check_solo:false
  in
  let r_u = workload () in
  Obs.start_tracing ();
  Obs.Metrics.start ();
  let r_t = workload () in
  let events = Obs.stop_tracing () in
  let snap = Obs.Metrics.stop () in
  Alcotest.(check bool) "stats identical (incl. Ckey visit counts)" true
    (r_u.Ts_checker.Explore.stats = r_t.Ts_checker.Explore.stats);
  Alcotest.(check bool) "verdict identical" true
    (r_u.Ts_checker.Explore.verdict = r_t.Ts_checker.Explore.verdict);
  Alcotest.(check bool) "per-vector spans recorded" true
    (has_span "explore.vector" events);
  (* the metrics counter and the engine's own stats record agree on the
     number of distinct Ckeys inserted into the visited tables *)
  Alcotest.(check (option int)) "metrics mirror table_misses"
    (Some r_t.Ts_checker.Explore.stats.Ts_checker.Explore.table_misses)
    (List.assoc_opt "explore.table_misses" snap.Obs.Metrics.counters)

(* --- exporters --------------------------------------------------------- *)

let count_substring hay needle =
  let ln = String.length needle in
  let rec go i acc =
    if i + ln > String.length hay then acc
    else if String.sub hay i ln = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let chrome_trace_wellformed () =
  Obs.start_tracing ();
  let proto = Ts_protocols.Racing.make ~n:3 in
  let t = Valency.create proto ~horizon:60 in
  ignore (Theorem.theorem1 t);
  let events = Obs.stop_tracing () in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " span present") true (has_span name events))
    [ "theorem1"; "lemma1"; "lemma2"; "lemma3"; "lemma4"; "valency.search" ];
  let js = Export.chrome_trace events in
  check_valid_json "chrome_trace" js;
  Alcotest.(check int) "every begin has an end"
    (count_substring js "\"ph\":\"B\"") (count_substring js "\"ph\":\"E\"")

let phases_aggregate () =
  let sp ~id ~name ~cat ~t0 ~t1 =
    [ Obs.Span_open { id; parent = -1; domain = 0; name; cat; t = t0 };
      Obs.Span_close { id; t = t1; attrs = [] } ]
  in
  let evs =
    sp ~id:1 ~name:"a" ~cat:"x" ~t0:0.0 ~t1:0.010
    @ sp ~id:2 ~name:"a" ~cat:"x" ~t0:0.020 ~t1:0.050
    @ sp ~id:3 ~name:"b" ~cat:"y" ~t0:0.0 ~t1:0.005
    @ [ Obs.Span_open { id = 4; parent = -1; domain = 0; name = "leak"; cat = "y"; t = 0.0 } ]
  in
  (match Export.phases evs with
   | [ a; b ] ->
     Alcotest.(check string) "largest total first" "a" a.Export.name;
     Alcotest.(check int) "a count" 2 a.Export.count;
     Alcotest.(check bool) "a total = 40ms" true (Float.abs (a.Export.total_ms -. 40.0) < 1e-6);
     Alcotest.(check bool) "a max = 30ms" true (Float.abs (a.Export.max_ms -. 30.0) < 1e-6);
     Alcotest.(check string) "b second" "b" b.Export.name;
     Alcotest.(check bool) "b total = 5ms" true (Float.abs (b.Export.total_ms -. 5.0) < 1e-6)
   | ps -> Alcotest.failf "expected 2 phases (unclosed span dropped), got %d" (List.length ps));
  let table = Export.phase_table evs in
  Alcotest.(check bool) "table lists both phases" true
    (count_substring table "a" > 0 && count_substring table "b" > 0)

let metrics_registry () =
  Obs.Metrics.start ();
  Obs.Metrics.incr "c";
  Obs.Metrics.incr ~by:4 "c";
  Obs.Metrics.gauge "g" 3;
  Obs.Metrics.gauge "g" 2;
  Obs.Metrics.gauge_max "hw" 5;
  Obs.Metrics.gauge_max "hw" 3;
  Obs.Metrics.observe_ms "h" 2.0;
  Obs.Metrics.observe_ms "h" 4.0;
  let s = Obs.Metrics.stop () in
  Alcotest.(check (list (pair string int))) "counters" [ "c", 5 ] s.Obs.Metrics.counters;
  Alcotest.(check (list (pair string int))) "gauges (sorted; gauge keeps last, \
                                             gauge_max keeps max)"
    [ "g", 2; "hw", 5 ] s.Obs.Metrics.gauges;
  (match s.Obs.Metrics.histograms with
   | [ ("h", h) ] ->
     Alcotest.(check int) "histo count" 2 h.Obs.Metrics.count;
     Alcotest.(check bool) "histo sum/min/max" true
       (h.Obs.Metrics.sum = 6.0 && h.Obs.Metrics.min = 2.0 && h.Obs.Metrics.max = 4.0)
   | _ -> Alcotest.fail "expected exactly one histogram");
  (* disarmed: recording is inert and the registry is clean *)
  Obs.Metrics.incr "c";
  let s2 = Obs.Metrics.snapshot () in
  Alcotest.(check (list (pair string int))) "stop cleared the registry" []
    s2.Obs.Metrics.counters;
  (* the blob is valid JSON and byte-stable across equal snapshots *)
  let j1 = Export.metrics_json s and j2 = Export.metrics_json s in
  check_valid_json "metrics_json" j1;
  Alcotest.(check string) "byte-stable" j1 j2;
  Alcotest.(check bool) "versioned" true
    (count_substring j1 (Printf.sprintf "\"version\":%d" Export.metrics_version) = 1)

(* --- Engine_log / Trace unification ------------------------------------ *)

let engine_log_unified () =
  let saw : string list ref = ref [] in
  let reporter =
    { Logs.report =
        (fun _src _level ~over k msgf ->
          msgf (fun ?header:_ ?tags:_ fmt ->
              let buf = Buffer.create 64 in
              let ppf = Format.formatter_of_buffer buf in
              Format.kfprintf
                (fun ppf ->
                  Format.pp_print_flush ppf ();
                  saw := Buffer.contents buf :: !saw;
                  over ();
                  k ())
                ppf fmt)) }
  in
  let old_level = Logs.Src.level Engine_log.src in
  Logs.set_reporter reporter;
  Logs.Src.set_level Engine_log.src (Some Logs.Debug);
  Fun.protect
    ~finally:(fun () ->
      Logs.set_reporter Logs.nop_reporter;
      Logs.Src.set_level Engine_log.src old_level)
  @@ fun () ->
  Engine_log.Log.info (fun m -> m "hello %d" 42);
  Alcotest.(check (list string)) "reporter sees the message untraced" [ "hello 42" ] !saw;
  Obs.start_tracing ();
  Engine_log.Log.debug (fun m -> m "probe %s" "x");
  let evs = Obs.stop_tracing () in
  Alcotest.(check bool) "reporter still sees every message when traced" true
    (List.mem "probe x" !saw);
  Alcotest.(check bool) "and the message lands on the span timeline" true
    (List.exists
       (function
         | Obs.Instant { name = "probe x"; cat = "log.debug"; _ } -> true
         | _ -> false)
       evs)

let trace_interests_independent () =
  (* arming the race-detector interest must not disturb buffered spans,
     and draining spans must not drop buffered access events *)
  Obs.start_tracing ();
  let sp = Obs.enter ~cat:"test" "kept" in
  Obs.close sp;
  Trace.start ();
  Trace.access ~loc:"unification.probe" Trace.Write ~atomic:false;
  let span_evs = Obs.stop_tracing () in
  let access_evs = Trace.stop () in
  Alcotest.(check bool) "span survived the access drain" true (has_span "kept" span_evs);
  Alcotest.(check bool) "no access event leaked into the span drain" true
    (List.for_all (function Obs.Access _ -> false | _ -> true) span_evs);
  (match access_evs with
   | [ Trace.Access { loc = "unification.probe"; kind = Trace.Write; _ } ] -> ()
   | _ -> Alcotest.failf "access drain returned %d events" (List.length access_evs))

let suite =
  ( "obs",
    [
      Alcotest.test_case "span: nesting and ordering" `Quick span_nesting;
      Alcotest.test_case "span: disabled path is a no-op" `Quick span_disabled_noop;
      Alcotest.test_case "differential: theorem unchanged by tracing" `Quick
        differential_theorem;
      Alcotest.test_case "differential: explore unchanged by tracing" `Quick
        differential_explore;
      Alcotest.test_case "export: chrome trace well-formed" `Slow chrome_trace_wellformed;
      Alcotest.test_case "export: phase aggregation" `Quick phases_aggregate;
      Alcotest.test_case "metrics: registry semantics" `Quick metrics_registry;
      Alcotest.test_case "engine_log: consumers see every event" `Quick engine_log_unified;
      Alcotest.test_case "trace: interests drain independently" `Quick
        trace_interests_independent;
    ] )
