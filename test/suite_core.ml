(* The lower-bound engine: refined valency, lemmas, Theorem 1. *)
open Ts_model
open Ts_core
open Ts_protocols

let racing2 () = Valency.create (Racing.make ~n:2) ~horizon:40
let racing3 () = Valency.create (Racing.make ~n:3) ~horizon:60

let initial t =
  let proto = Valency.protocol t in
  let n = proto.Protocol.num_processes in
  Config.initial proto ~inputs:(Array.init n (fun p -> Value.int (if p = 1 then 1 else 0)))

let test_prop2_initial_valencies () =
  let t = racing2 () in
  let i0 = initial t in
  (* {p_v} is v-univalent from I (Proposition 2) *)
  Alcotest.(check (option int)) "{p0} 0-univalent" (Some 0)
    (Option.map Value.to_int (Valency.univalent_value t i0 (Pset.singleton 0)));
  Alcotest.(check (option int)) "{p1} 1-univalent" (Some 1)
    (Option.map Value.to_int (Valency.univalent_value t i0 (Pset.singleton 1)));
  Alcotest.(check bool) "{p0,p1} bivalent" true (Valency.is_bivalent t i0 (Pset.all 2))

let test_prop1_superset_can_decide () =
  let t = racing3 () in
  let i0 = initial t in
  (* Prop 1(ii): {p0} can decide 0, so any superset can *)
  List.iter
    (fun ps ->
      Alcotest.(check bool) "superset decides 0" true
        (Valency.can_decide t i0 ps Valency.zero <> None))
    [ Pset.of_list [ 0 ]; Pset.of_list [ 0; 1 ]; Pset.of_list [ 0; 2 ]; Pset.all 3 ]

let test_prop1_decided_configuration () =
  let t = racing2 () in
  let proto = Valency.protocol t in
  let i0 = initial t in
  (* run p0 solo to a decision; afterwards every set "can decide" 0 with
     the empty execution, and is 0-univalent (Prop 1(iv) + agreement) *)
  let cfg, _, d = Execution.solo proto i0 0 ~flips:(fun _ -> true) ~budget:1000 in
  Alcotest.(check (option int)) "p0 decided 0" (Some 0) (Option.map Value.to_int d);
  Alcotest.(check bool) "empty witness suffices" true
    (Valency.can_decide t cfg Pset.empty Valency.zero = Some []);
  Alcotest.(check (option int)) "{p1} now 0-univalent" (Some 0)
    (Option.map Value.to_int (Valency.univalent_value t cfg (Pset.singleton 1)))

let test_witnesses_replay () =
  let t = racing2 () in
  let proto = Valency.protocol t in
  let i0 = initial t in
  match Valency.classify t i0 (Pset.all 2) with
  | Valency.Bivalent (w0, w1) ->
    List.iter
      (fun (w, v) ->
        let cfg, _ = Execution.apply proto i0 w in
        Alcotest.(check bool) "witness decides claimed value" true
          (List.exists (Value.equal v) (Config.decided_values cfg)))
      [ w0, Valency.zero; w1, Valency.one ]
  | _ -> Alcotest.fail "initial configuration should be bivalent for {p0,p1}"

let test_memoization () =
  let t = racing2 () in
  let i0 = initial t in
  ignore (Valency.can_decide t i0 (Pset.all 2) Valency.zero);
  let s1 = Valency.searches t in
  ignore (Valency.can_decide t i0 (Pset.all 2) Valency.zero);
  Alcotest.(check int) "second query served from memo" s1 (Valency.searches t)

let test_lemma1_requires_three () =
  let t = racing2 () in
  Alcotest.check_raises "|P| >= 3" (Invalid_argument "Lemmas.lemma1: |P| must be >= 3")
    (fun () -> ignore (Lemmas.lemma1 t (initial t) (Pset.all 2)))

let test_lemma1_racing3 () =
  let t = racing3 () in
  let proto = Valency.protocol t in
  let i0 = initial t in
  let { Lemmas.phi; z } = Lemmas.lemma1 t i0 (Pset.all 3) in
  let cfg, _ = Execution.apply proto i0 phi in
  Alcotest.(check bool) "P - {z} bivalent after phi" true
    (Valency.is_bivalent t cfg (Pset.remove z (Pset.all 3)));
  Alcotest.(check bool) "phi is P-only" true
    (Pset.subset (Execution.participants (snd (Execution.apply proto i0 phi))) (Pset.all 3))

let test_solo_deciding () =
  let t = racing2 () in
  let proto = Valency.protocol t in
  let i0 = initial t in
  let zeta = Lemmas.solo_deciding t i0 1 in
  let cfg, trace = Execution.apply proto i0 zeta in
  Alcotest.(check bool) "z decided" true (Config.has_decided cfg 1 <> None);
  Alcotest.(check (list int)) "only z took steps" [ 1 ]
    (Pset.to_list (Execution.participants trace))

let test_split_at_uncovered_write () =
  let t = racing2 () in
  let i0 = initial t in
  let zeta = Lemmas.solo_deciding t i0 0 in
  let prefix, cfg, r = Lemmas.split_at_uncovered_write t i0 0 ~covered:[] ~zeta in
  (* with nothing covered, the split stops at the very first write *)
  (match Config.poised (Valency.protocol t) cfg 0 with
   | Some (Action.Write (r', _)) -> Alcotest.(check int) "poised at reported register" r r'
   | _ -> Alcotest.fail "not poised at a write");
  let _, trace = Execution.apply (Valency.protocol t) i0 prefix in
  Alcotest.(check (list int)) "prefix contains no writes" []
    (Execution.written_registers trace)

let test_lemma2_holds_on_initial () =
  let t = racing2 () in
  Alcotest.(check bool) "deciding solo execution must write fresh" true
    (Lemmas.lemma2_holds t (initial t) ~r:Pset.empty ~z:0)

let test_lemma3_via_nice_configuration () =
  let t = racing3 () in
  let proto = Valency.protocol t in
  let i0 = initial t in
  let nice = Theorem.lemma4 t i0 (Pset.all 3) in
  Alcotest.(check int) "one covering process" 1 (Pset.cardinal nice.Theorem.cover);
  Alcotest.(check bool) "pair bivalent" true
    (Valency.is_bivalent t nice.Theorem.cfg nice.Theorem.q_pair);
  Alcotest.(check bool) "cover well spread" true
    (Covering.well_spread proto nice.Theorem.cfg nice.Theorem.cover);
  let l3 = Lemmas.lemma3 t nice.Theorem.cfg ~p:(Pset.all 3) ~r:nice.Theorem.cover in
  (* re-verify the lemma's guarantee *)
  let beta = Covering.block_write nice.Theorem.cover in
  let cfg', _ = Execution.apply proto nice.Theorem.cfg (l3.Lemmas.phi3 @ beta) in
  Alcotest.(check bool) "R ∪ {q} bivalent after phi·beta" true
    (Valency.is_bivalent t cfg' (Pset.add l3.Lemmas.q nice.Theorem.cover));
  Alcotest.(check bool) "q is in the pair" true (Pset.mem l3.Lemmas.q nice.Theorem.q_pair)

let test_lemma3_premises () =
  let t = racing3 () in
  let i0 = initial t in
  Alcotest.check_raises "R empty rejected" (Invalid_argument "Lemmas.lemma3: R must be non-empty")
    (fun () -> ignore (Lemmas.lemma3 t i0 ~p:(Pset.all 3) ~r:Pset.empty));
  Alcotest.check_raises "R must cover" (Invalid_argument "Lemmas.lemma3: R is not a covering set")
    (fun () -> ignore (Lemmas.lemma3 t i0 ~p:(Pset.all 3) ~r:(Pset.singleton 0)))

let check_certificate t =
  let cert = Theorem.theorem1 t in
  Alcotest.(check bool) "enough registers written" true
    (List.length cert.Theorem.registers_written >= cert.Theorem.n - 1);
  (match Theorem.verify cert (Valency.protocol t) with
   | Ok () -> ()
   | Error e -> Alcotest.failf "certificate replay failed: %s" e);
  cert

let test_theorem1_n2 () =
  let cert = check_certificate (racing2 ()) in
  Alcotest.(check int) "n" 2 cert.Theorem.n

let test_theorem1_randomized () =
  (* the bound covers randomized protocols: coins are resolved
     adversarially by the oracle (nondeterministic solo termination) *)
  let t = Valency.create (Racing.make_randomized ~n:2) ~horizon:40 in
  let cert = Theorem.theorem1 t in
  Alcotest.(check bool) "enough registers" true
    (List.length cert.Theorem.registers_written >= 1);
  (match Theorem.verify cert (Racing.make_randomized ~n:2) with
   | Ok () -> ()
   | Error e -> Alcotest.failf "randomized replay failed: %s" e)

let test_theorem1_randomized_n3 () =
  let t = Valency.create (Racing.make_randomized ~n:3) ~horizon:70 in
  let cert = Theorem.theorem1 t in
  Alcotest.(check bool) "enough registers" true
    (List.length cert.Theorem.registers_written >= 2)

let test_theorem1_n3 () =
  let cert = check_certificate (racing3 ()) in
  Alcotest.(check int) "n" 3 cert.Theorem.n;
  Alcotest.(check int) "covered registers at nice configuration" 1
    (List.length cert.Theorem.covered_registers);
  Alcotest.(check bool) "fresh register is fresh" true
    (not (List.mem cert.Theorem.fresh_register cert.Theorem.covered_registers))

let test_theorem1_auto_deepens () =
  (* start hopeless, let iterative deepening find a sufficient horizon *)
  let cert, horizon =
    Theorem.theorem1_auto (Racing.make ~n:2) ~initial_horizon:2 ~max_horizon:128
  in
  Alcotest.(check bool) "horizon grew" true (horizon > 2);
  Alcotest.(check bool) "certificate valid" true
    (List.length cert.Theorem.registers_written >= 1)

let test_theorem1_auto_gives_up () =
  Alcotest.(check bool) "max horizon respected" true
    (match Theorem.theorem1_auto (Racing.make ~n:3) ~initial_horizon:2 ~max_horizon:4 with
     | _ -> false
     | exception Valency.Horizon_exceeded _ -> true)

let test_theorem1_small_horizon_raises () =
  let t = Valency.create (Racing.make ~n:3) ~horizon:5 in
  Alcotest.(check bool) "horizon exceeded" true
    (match Theorem.theorem1 t with
     | _ -> false
     | exception Valency.Horizon_exceeded _ -> true)

let test_budget_guard () =
  Alcotest.(check bool) "non-positive limit rejected" true
    (match Budget.create ~max_nodes:0 () with
     | _ -> false
     | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "unlimited is unlimited" true (Budget.is_unlimited Budget.unlimited);
  Budget.charge Budget.unlimited 1_000_000;
  Budget.check Budget.unlimited;
  let b = Budget.create ~max_nodes:100 () in
  Budget.charge b 60;
  Alcotest.(check int) "spent counts" 60 (Budget.spent b);
  Alcotest.(check bool) "not yet breached" true (Budget.breached b = None);
  Alcotest.(check bool) "node cap trips" true
    (match Budget.charge b 60 with
     | () -> false
     | exception Budget.Exhausted (Budget.Node_cap _) -> true);
  (* an expired deadline is caught by check without charging *)
  let d = Budget.create ~deadline:0.002 () in
  Unix.sleepf 0.01;
  Alcotest.(check bool) "deadline trips" true
    (match Budget.check d with
     | () -> false
     | exception Budget.Exhausted (Budget.Deadline _) -> true)

let test_theorem1_budget_partial () =
  (* a capped run degrades to a structured partial outcome, not an
     exception or a hang *)
  let proto = Racing.make ~n:2 in
  let t = Valency.create ~budget:(Budget.create ~max_nodes:5 ()) proto ~horizon:40 in
  match Theorem.theorem1_outcome t with
  | Theorem.Partial (Theorem.Out_of_budget (Budget.Node_cap _), p) ->
    Alcotest.(check int) "progress reports the horizon" 40 p.Theorem.horizon;
    Alcotest.(check bool) "some oracle work recorded" true (p.Theorem.nodes_expanded > 0)
  | Theorem.Partial (s, _) -> Alcotest.failf "wrong stop: %a" Theorem.pp_stop s
  | Theorem.Complete _ -> Alcotest.fail "5 nodes cannot complete the construction"

let test_escalation_completes_like_unbounded () =
  (* the acceptance path: the escalation wrapper, given room, produces the
     same certificate as a plain unbounded run *)
  let proto = Racing.make ~n:2 in
  let unbounded = Theorem.theorem1 (Valency.create proto ~horizon:40) in
  (match Theorem.theorem1_escalate proto ~initial_horizon:40 with
   | Theorem.Complete cert, horizon ->
     Alcotest.(check int) "no escalation needed" 40 horizon;
     Alcotest.(check bool) "same schedule" true
       (cert.Theorem.schedule = unbounded.Theorem.schedule);
     Alcotest.(check bool) "same registers" true
       (cert.Theorem.registers_written = unbounded.Theorem.registers_written)
   | Theorem.Partial (s, _), _ -> Alcotest.failf "unexpected partial: %a" Theorem.pp_stop s);
  (* starting hopeless, it escalates to the same certificate *)
  match Theorem.theorem1_escalate proto ~initial_horizon:2 ~retries:6 with
  | Theorem.Complete cert, horizon ->
    Alcotest.(check bool) "horizon grew" true (horizon > 2);
    Alcotest.(check bool) "same registers after escalation" true
      (cert.Theorem.registers_written = unbounded.Theorem.registers_written)
  | Theorem.Partial (s, _), _ -> Alcotest.failf "escalation failed: %a" Theorem.pp_stop s

let test_escalation_respects_budget () =
  (* the budget spans all attempts: a tiny allowance stops the retry loop *)
  match
    Theorem.theorem1_escalate ~budget:(Budget.create ~max_nodes:5 ())
      (Racing.make ~n:2) ~initial_horizon:40
  with
  | Theorem.Partial (Theorem.Out_of_budget _, _), _ -> ()
  | Theorem.Complete _, _ -> Alcotest.fail "5 nodes cannot complete the construction"
  | Theorem.Partial (Theorem.Horizon_wall _, _), _ ->
    Alcotest.fail "budget should trip before the horizon at depth 40"

let test_verify_detects_tampering () =
  let cert = Theorem.theorem1 (racing2 ()) in
  let tampered = { cert with Theorem.registers_written = [] } in
  Alcotest.(check bool) "tampered certificate rejected" true
    (Theorem.verify tampered (Racing.make ~n:2) <> Ok ());
  Alcotest.(check bool) "wrong protocol rejected" true
    (Theorem.verify cert (Racing.make ~n:3) <> Ok ())

let test_certificate_pp () =
  let cert = Theorem.theorem1 (racing2 ()) in
  let s = Format.asprintf "%a" Theorem.pp_certificate cert in
  Alcotest.(check bool) "mentions the bound" true
    (String.length s > 0 && String.split_on_char '\n' s <> [])

let test_bounds () =
  Alcotest.(check int) "zhu 8" 7 (Bounds.zhu_space 8);
  Alcotest.(check int) "fhs 16" 4 (Bounds.fhs_space 16);
  Alcotest.(check int) "fhs 17 rounds up" 5 (Bounds.fhs_space 17);
  Alcotest.(check int) "upper" 8 (Bounds.known_upper_space 8);
  Alcotest.(check int) "jtt" 7 (Bounds.jtt_space 8);
  Alcotest.(check bool) "n log n" true (abs_float (Bounds.fan_lynch_cost 8 -. 24.) < 1e-9);
  Alcotest.(check bool) "log2 4! = log2 24" true
    (abs_float (Bounds.log2_factorial 4 -. (log 24. /. log 2.)) < 1e-9);
  Alcotest.(check bool) "attiya-censor" true (Bounds.attiya_censor_steps 7 = 49);
  Alcotest.(check bool) "leader space grows slowly" true (Bounds.leader_election_space 64 <= 8)

let test_covering_helpers () =
  let t = racing2 () in
  let proto = Valency.protocol t in
  let i0 = initial t in
  (* drive p0 to its first write: it covers that register *)
  let zeta = Lemmas.solo_deciding t i0 0 in
  let prefix, cfg, r = Lemmas.split_at_uncovered_write t i0 0 ~covered:[] ~zeta in
  ignore prefix;
  Alcotest.(check bool) "is_covering" true (Covering.is_covering proto cfg (Pset.singleton 0));
  Alcotest.(check (list int)) "covered_set" [ r ] (Covering.covered_set proto cfg (Pset.singleton 0));
  Alcotest.(check bool) "well_spread singleton" true (Covering.well_spread proto cfg (Pset.singleton 0));
  Alcotest.(check int) "block write schedule" 1 (List.length (Covering.block_write (Pset.singleton 0)));
  Alcotest.(check int) "empty block write" 0 (List.length (Covering.block_write Pset.empty))

let suite =
  ( "core-engine",
    [
      Alcotest.test_case "Prop 2: initial valencies" `Quick test_prop2_initial_valencies;
      Alcotest.test_case "Prop 1(ii): supersets decide" `Quick test_prop1_superset_can_decide;
      Alcotest.test_case "decided configurations" `Quick test_prop1_decided_configuration;
      Alcotest.test_case "bivalence witnesses replay" `Quick test_witnesses_replay;
      Alcotest.test_case "valency memoization" `Quick test_memoization;
      Alcotest.test_case "lemma 1 arity check" `Quick test_lemma1_requires_three;
      Alcotest.test_case "lemma 1 on racing-3" `Slow test_lemma1_racing3;
      Alcotest.test_case "solo deciding executions" `Quick test_solo_deciding;
      Alcotest.test_case "split at uncovered write" `Quick test_split_at_uncovered_write;
      Alcotest.test_case "lemma 2 on initial configuration" `Quick test_lemma2_holds_on_initial;
      Alcotest.test_case "lemmas 3+4 via nice configuration" `Slow test_lemma3_via_nice_configuration;
      Alcotest.test_case "lemma 3 premises enforced" `Quick test_lemma3_premises;
      Alcotest.test_case "Theorem 1 on racing-2" `Quick test_theorem1_n2;
      Alcotest.test_case "Theorem 1 on racing-3" `Slow test_theorem1_n3;
      Alcotest.test_case "Theorem 1 on randomized racing-2" `Quick test_theorem1_randomized;
      Alcotest.test_case "Theorem 1 on randomized racing-3" `Slow test_theorem1_randomized_n3;
      Alcotest.test_case "horizon too small raises" `Quick test_theorem1_small_horizon_raises;
      Alcotest.test_case "iterative deepening succeeds" `Quick test_theorem1_auto_deepens;
      Alcotest.test_case "iterative deepening bounded" `Quick test_theorem1_auto_gives_up;
      Alcotest.test_case "budget guard" `Quick test_budget_guard;
      Alcotest.test_case "budget-capped theorem 1 is partial" `Quick
        test_theorem1_budget_partial;
      Alcotest.test_case "escalation matches unbounded run" `Quick
        test_escalation_completes_like_unbounded;
      Alcotest.test_case "escalation respects the budget" `Quick
        test_escalation_respects_budget;
      Alcotest.test_case "verify detects tampering" `Quick test_verify_detects_tampering;
      Alcotest.test_case "certificate pretty-printing" `Quick test_certificate_pp;
      Alcotest.test_case "bound curves" `Quick test_bounds;
      Alcotest.test_case "covering helpers" `Quick test_covering_helpers;
    ] )
