(* The distributed search cluster: shard routing determinism, the wire
   codecs, and — the load-bearing property — that a multi-worker
   coordinator run produces a result document byte-identical to the
   serial engine's for every mode, plus structured degradation when a
   worker dies and full recovery through the chaos proxy. *)

open Ts_model
module Json = Ts_analysis.Json
module Shard = Ts_cluster.Shard
module Msg = Ts_cluster.Msg
module Worker = Ts_cluster.Worker
module Coord = Ts_cluster.Coord
module Dispatch = Ts_service.Dispatch
module Request = Ts_service.Request
module Chaos = Ts_service.Chaos

(* --- shard routing ------------------------------------------------------- *)

let some_keys n =
  List.init n (fun i ->
      Ckey.of_string (Printf.sprintf "key-%d-%s" i (String.make (i mod 7) 'x')))

let test_shard_determinism () =
  let keys = some_keys 200 in
  List.iter
    (fun k ->
      let s = Shard.owner ~shards:8 k in
      Alcotest.(check bool) "in range" true (s >= 0 && s < 8);
      Alcotest.(check int) "stable" s (Shard.owner ~shards:8 k))
    keys;
  (* the partition actually spreads keys: no shard owns everything *)
  let counts = Array.make 8 0 in
  List.iter (fun k -> let s = Shard.owner ~shards:8 k in counts.(s) <- counts.(s) + 1) keys;
  Alcotest.(check bool) "spread" true (Array.for_all (fun c -> c < 200) counts)

let test_shard_resharding_moves_only_to_new () =
  (* rendezvous hashing: growing s -> s+1 may move a key only TO the new
     shard; every key that stays mapped stays put *)
  let keys = some_keys 300 in
  List.iter
    (fun shards ->
      List.iter
        (fun k ->
          let before = Shard.owner ~shards k in
          let after = Shard.owner ~shards:(shards + 1) k in
          if after <> before then
            Alcotest.(check int) "moved key lands on the new shard" shards after)
        keys)
    [ 1; 2; 3; 5; 8 ]

let test_round_robin () =
  let a = Shard.round_robin ~shards:5 ~workers:2 in
  Alcotest.(check (list int)) "round robin" [ 0; 1; 0; 1; 0 ] (Array.to_list a)

(* --- codecs -------------------------------------------------------------- *)

let test_sched_codec () =
  let scheds =
    [
      [];
      [ Execution.ev 0 ];
      [ Execution.flip 1 true; Execution.flip 1 false; Execution.ev 2 ];
      [ Execution.ev 10; Execution.flip 0 false ];
    ]
  in
  List.iter
    (fun s ->
      match Msg.sched_of_string (Msg.sched_to_string s) with
      | Ok s' -> Alcotest.(check bool) "roundtrip" true (s = s')
      | Error m -> Alcotest.fail m)
    scheds;
  (match Msg.sched_of_string "0,,1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty token must be rejected")

let test_cand_codec () =
  let cands =
    [ { Msg.shard = 0; sched = "" }; { Msg.shard = 7; sched = "0,1h,1t,2" } ]
  in
  match Msg.cands_of_json (Msg.cands_to_json cands) with
  | Ok c -> Alcotest.(check bool) "roundtrip" true (c = cands)
  | Error m -> Alcotest.fail m

let test_hex_codec () =
  let raws = [ ""; "\x00\xff\x42"; "hello" ] in
  List.iter
    (fun r ->
      match Msg.hex_decode (Msg.hex_encode r) with
      | Ok r' -> Alcotest.(check string) "roundtrip" r r'
      | Error m -> Alcotest.fail m)
    raws

(* --- the parallel == serial differential ---------------------------------- *)

let serial_result req =
  let d = Dispatch.create () in
  match Json.member "result" (Dispatch.handle d req) with
  | Some r -> Json.to_string r
  | None -> Alcotest.fail "serial dispatch produced no result"

let local_peers n = List.init n (fun i -> Coord.local_peer ~wid:i (Worker.create ()))

let cluster_result ?(workers = 2) params =
  match Coord.run params ~peers:(local_peers workers) with
  | Coord.Complete { result; _ } -> Json.to_string result
  | Coord.Failed _ -> Alcotest.fail "cluster run failed"

let check_params ~protocol ~n ~max_configs ~max_depth =
  {
    Coord.default_params with
    op = Coord.Check;
    protocol;
    n;
    max_configs;
    max_depth;
    shards = 5;
    chunk = 32;  (* small chunks so multi-chunk rounds are exercised *)
  }

let check_req ~protocol ~n ~max_configs ~max_depth =
  { Request.defaults with op = Request.Check; protocol; n; max_configs; max_depth }

let differential ~workers params req =
  let serial = serial_result req in
  let cluster = cluster_result ~workers params in
  Alcotest.(check string) "parallel == serial" serial cluster

let test_differential_check_clean () =
  (* racing counters truncate (infinite reachable set): exercises the
     truncation flag and big multi-round frontiers *)
  let p = check_params ~protocol:"racing" ~n:2 ~max_configs:400 ~max_depth:12 in
  let r = check_req ~protocol:"racing" ~n:2 ~max_configs:400 ~max_depth:12 in
  differential ~workers:1 p r;
  differential ~workers:2 p r;
  differential ~workers:3 p r

let test_differential_check_violation () =
  (* broken-lww loses a write: an agreement violation found mid-search,
     exercising the drain pass and witness reconstruction *)
  let p = check_params ~protocol:"broken-lww" ~n:2 ~max_configs:2000 ~max_depth:20 in
  let r = check_req ~protocol:"broken-lww" ~n:2 ~max_configs:2000 ~max_depth:20 in
  differential ~workers:2 p r

let test_differential_check_swap () =
  let p = check_params ~protocol:"swap" ~n:2 ~max_configs:500 ~max_depth:14 in
  let r = check_req ~protocol:"swap" ~n:2 ~max_configs:500 ~max_depth:14 in
  differential ~workers:2 p r

let test_differential_resilient () =
  let p =
    {
      (check_params ~protocol:"racing" ~n:2 ~max_configs:200 ~max_depth:10) with
      Coord.op = Coord.Resilient;
      t_faults = 1;
    }
  in
  let r =
    {
      (check_req ~protocol:"racing" ~n:2 ~max_configs:200 ~max_depth:10) with
      Request.op = Request.Resilient;
      t_faults = 1;
    }
  in
  differential ~workers:2 p r

let test_differential_valency () =
  let p =
    {
      Coord.default_params with
      op = Coord.Valency;
      protocol = "racing";
      n = 2;
      horizon = Some 8;
      shards = 5;
      chunk = 32;
    }
  in
  let r =
    { Request.defaults with op = Request.Valency; protocol = "racing"; n = 2;
      horizon = Some 8 }
  in
  differential ~workers:2 p r

let test_steal_preserves_answer () =
  (* a steal threshold of 1 forces migrations at nearly every round
     barrier; the answer must not notice *)
  let p =
    { (check_params ~protocol:"racing" ~n:2 ~max_configs:400 ~max_depth:12) with
      Coord.steal_threshold = 1 }
  in
  let r = check_req ~protocol:"racing" ~n:2 ~max_configs:400 ~max_depth:12 in
  differential ~workers:3 p r

(* --- failure model -------------------------------------------------------- *)

let test_worker_death_is_partial () =
  let w0 = Coord.local_peer ~wid:0 (Worker.create ()) in
  let budget = ref 6 in
  let real = Coord.local_peer ~wid:1 (Worker.create ()) in
  let dying =
    {
      real with
      Coord.call =
        (fun doc ->
          decr budget;
          if !budget <= 0 then Error "exhausted: injected crash" else real.Coord.call doc);
    }
  in
  let p = check_params ~protocol:"racing" ~n:2 ~max_configs:400 ~max_depth:12 in
  match Coord.run p ~peers:[ w0; dying ] with
  | Coord.Complete _ -> Alcotest.fail "expected a partial outcome"
  | Coord.Failed f ->
    Alcotest.(check bool) "reason" true (f.Coord.reason = `Dead_workers);
    Alcotest.(check (list int)) "dead worker identified" [ 1 ]
      (List.map fst f.Coord.dead);
    Alcotest.(check bool) "lost shards identified" true (f.Coord.lost_shards <> []);
    List.iter
      (fun s -> Alcotest.(check int) "lost shards were the dead worker's" 1 (s mod 2))
      f.Coord.lost_shards;
    (* every reassigned shard lands on the survivor *)
    List.iter (fun (_, w) -> Alcotest.(check int) "reassigned to survivor" 0 w)
      f.Coord.reassignment;
    Alcotest.(check bool) "reassignment covers all shards" true
      (List.length f.Coord.reassignment = p.Coord.shards)

let test_restart_on_survivors_completes () =
  let w0 = Coord.local_peer ~wid:0 (Worker.create ()) in
  let budget = ref 6 in
  let real = Coord.local_peer ~wid:1 (Worker.create ()) in
  let dying =
    {
      real with
      Coord.call =
        (fun doc ->
          decr budget;
          if !budget <= 0 then Error "exhausted: injected crash" else real.Coord.call doc);
    }
  in
  let p = check_params ~protocol:"racing" ~n:2 ~max_configs:400 ~max_depth:12 in
  let serial =
    serial_result (check_req ~protocol:"racing" ~n:2 ~max_configs:400 ~max_depth:12)
  in
  match Coord.run ~restarts:1 p ~peers:[ w0; dying ] with
  | Coord.Failed _ -> Alcotest.fail "restart on the survivor should complete"
  | Coord.Complete { result; _ } ->
    Alcotest.(check string) "restarted answer still byte-identical" serial
      (Json.to_string result)

(* --- idempotent retries --------------------------------------------------- *)

let test_duplicate_delivery_is_replayed () =
  (* a peer whose transport redelivers every mutating message twice:
     the seq protocol must absorb the duplicates byte-for-byte *)
  let w = Worker.create () in
  let real = Coord.local_peer ~wid:0 w in
  let duplicating =
    {
      real with
      Coord.call =
        (fun doc ->
          let first = real.Coord.call doc in
          match Json.member "seq" doc with
          | Some _ ->
            let second = real.Coord.call doc in
            Alcotest.(check bool) "replayed reply identical" true (first = second);
            second
          | None -> first);
    }
  in
  let p = check_params ~protocol:"racing" ~n:2 ~max_configs:200 ~max_depth:10 in
  let serial =
    serial_result (check_req ~protocol:"racing" ~n:2 ~max_configs:200 ~max_depth:10)
  in
  match Coord.run p ~peers:[ duplicating ] with
  | Coord.Failed _ -> Alcotest.fail "duplicated delivery must still complete"
  | Coord.Complete { result; _ } ->
    Alcotest.(check string) "answer unchanged under duplication" serial
      (Json.to_string result)

(* --- chaos leg ------------------------------------------------------------ *)

let test_chaos_leg () =
  (* a real TCP worker behind the fault proxy at fault probability 1.0:
     every connection is faulted (latency + throttle — the deterministic
     classes), and the resilient client must still converge to the exact
     serial answer *)
  let srv = Worker.start { Worker.default_config with port = 0 } in
  Fun.protect ~finally:(fun () -> Worker.stop srv) @@ fun () ->
  let chaos =
    Chaos.start
      {
        (Chaos.default_config ~upstream_port:(Worker.port srv)) with
        Chaos.fault_prob = 1.0;
        seed = 2026;
        classes = { Chaos.no_classes with latency = true; throttle = true };
        max_delay_ms = 5;
      }
  in
  Fun.protect ~finally:(fun () -> Chaos.stop chaos) @@ fun () ->
  let peer = Coord.tcp_peer ~wid:0 ~host:"127.0.0.1" ~port:(Chaos.port chaos) () in
  let p = check_params ~protocol:"racing" ~n:2 ~max_configs:150 ~max_depth:8 in
  let serial =
    serial_result (check_req ~protocol:"racing" ~n:2 ~max_configs:150 ~max_depth:8)
  in
  (match Coord.run p ~peers:[ peer ] with
  | Coord.Failed _ -> Alcotest.fail "chaos run must eventually succeed"
  | Coord.Complete { result; _ } ->
    Alcotest.(check string) "answer survives a fully faulted proxy" serial
      (Json.to_string result));
  let s = Chaos.stats chaos in
  Alcotest.(check bool) "every connection was faulted" true
    (s.Chaos.connections > 0 && s.Chaos.faulted = s.Chaos.connections)

let suite =
  ( "cluster",
    [
      Alcotest.test_case "shard: deterministic routing" `Quick test_shard_determinism;
      Alcotest.test_case "shard: resharding moves keys only to the new shard" `Quick
        test_shard_resharding_moves_only_to_new;
      Alcotest.test_case "shard: round-robin assignment" `Quick test_round_robin;
      Alcotest.test_case "msg: schedule codec" `Quick test_sched_codec;
      Alcotest.test_case "msg: candidate codec" `Quick test_cand_codec;
      Alcotest.test_case "msg: hex codec" `Quick test_hex_codec;
      Alcotest.test_case "differential: check clean (1/2/3 workers)" `Quick
        test_differential_check_clean;
      Alcotest.test_case "differential: check violation" `Quick
        test_differential_check_violation;
      Alcotest.test_case "differential: check swap" `Quick test_differential_check_swap;
      Alcotest.test_case "differential: resilient" `Quick test_differential_resilient;
      Alcotest.test_case "differential: valency" `Quick test_differential_valency;
      Alcotest.test_case "stealing preserves the answer" `Quick
        test_steal_preserves_answer;
      Alcotest.test_case "worker death yields a structured partial" `Quick
        test_worker_death_is_partial;
      Alcotest.test_case "restart on survivors completes identically" `Quick
        test_restart_on_survivors_completes;
      Alcotest.test_case "duplicate delivery is replayed" `Quick
        test_duplicate_delivery_is_replayed;
      Alcotest.test_case "chaos: fully faulted proxy still converges" `Quick
        test_chaos_leg;
    ] )
