(* Crash-stop fault injection and the t-resilience checker. *)
open Ts_model
open Ts_checker
open Ts_protocols

let inputs3 = [| Value.int 1; Value.int 0; Value.int 1 |]

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- fault plans ------------------------------------------------------- *)

let test_plan_validation () =
  Alcotest.(check bool) "duplicate pid rejected" true
    (match Fault.of_list [ 0, Fault.After_steps 1; 0, Fault.Before_write ] with
     | _ -> false
     | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "negative step count rejected" true
    (match Fault.crash_after 0 (-1) with
     | _ -> false
     | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "overlapping union rejected" true
    (match Fault.union (Fault.crash_after 1 2) (Fault.crash_before_write 1) with
     | _ -> false
     | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "t > n rejected" true
    (match Fault.random ~seed:1 ~n:2 ~t:3 ~max_delay:5 with
     | _ -> false
     | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "empty plan is empty" true (Fault.is_empty Fault.none);
  Alcotest.(check bool) "union not empty" false
    (Fault.is_empty (Fault.union Fault.none (Fault.crash_after 2 0)))

let test_random_plan_seeded () =
  let plan = Fault.random ~seed:42 ~n:5 ~t:3 ~max_delay:7 in
  Alcotest.(check (option int)) "seed recorded" (Some 42) (Fault.seed plan);
  let crashes = Fault.crashes plan in
  Alcotest.(check int) "t victims" 3 (List.length crashes);
  let pids = List.map fst crashes in
  Alcotest.(check bool) "victims distinct and in range" true
    (List.length (List.sort_uniq compare pids) = 3
     && List.for_all (fun p -> p >= 0 && p < 5) pids);
  List.iter
    (fun (_, tr) ->
      match tr with
      | Fault.After_steps k -> Alcotest.(check bool) "delay in range" true (k >= 0 && k <= 7)
      | Fault.Before_write -> Alcotest.fail "random plans use step delays")
    crashes;
  (* same seed, same plan *)
  Alcotest.(check bool) "deterministic in the seed" true
    (Fault.crashes (Fault.random ~seed:42 ~n:5 ~t:3 ~max_delay:7) = crashes);
  let s = Format.asprintf "%a" Fault.pp plan in
  Alcotest.(check bool) "pp mentions the seed" true (contains ~needle:"42" s)

(* --- simulation under faults ------------------------------------------ *)

let test_crash_after_k_steps () =
  let proto = Racing.make ~n:3 in
  let o =
    Sim.run proto ~faults:(Fault.crash_after 0 2) ~inputs:inputs3
      ~policy:Sim.Round_robin ~flips:(fun () -> true) ~budget:100_000
  in
  Alcotest.(check (list int)) "p0 crashed" [ 0 ] o.Sim.crashed;
  Alcotest.(check int) "p0 took exactly 2 steps" 2
    (List.length (List.filter (fun s -> s.Execution.actor = 0) o.Sim.trace));
  Alcotest.(check bool) "p0 did not decide" true
    (not (List.mem_assoc 0 o.Sim.decisions));
  (match Sim.agreement o with
   | Ok v -> Alcotest.(check bool) "survivors agree on an input" true (Sim.valid ~inputs:inputs3 v)
   | Error vs -> Alcotest.failf "survivors disagreed: %a" Fmt.(Dump.list Value.pp) vs);
  Alcotest.(check int) "both survivors decided" 2 (List.length o.Sim.decisions)

let test_before_write_loses_the_write () =
  (* wait-for-all: p0 crashes while poised to announce, so its slot stays
     Bot and nobody can complete a scan *)
  let proto = Broken.wait_for_all ~n:3 in
  let o =
    Sim.run proto ~faults:(Fault.crash_before_write 0) ~inputs:inputs3
      ~policy:Sim.Round_robin ~flips:(fun () -> true) ~budget:5_000
  in
  Alcotest.(check (list int)) "p0 crashed" [ 0 ] o.Sim.crashed;
  Alcotest.(check bool) "pending write lost: R0 still Bot" true
    (Config.register o.Sim.final 0 = Value.Bot);
  Alcotest.(check int) "nobody decided" 0 (List.length o.Sim.decisions);
  Alcotest.(check bool) "budget exhausted by the stalled scan" true o.Sim.ran_out

let test_decided_process_cannot_crash () =
  let proto = Racing.make ~n:3 in
  (* solo p0 decides long before step 10_000: the trigger never fires *)
  let o =
    Sim.run proto ~faults:(Fault.crash_after 0 10_000) ~inputs:inputs3
      ~policy:(Sim.Solo 0) ~flips:(fun () -> true) ~budget:100_000
  in
  Alcotest.(check (list int)) "no crash" [] o.Sim.crashed;
  Alcotest.(check bool) "p0 decided" true (List.mem_assoc 0 o.Sim.decisions)

let test_all_crashed_terminates () =
  let proto = Racing.make ~n:3 in
  let plan =
    Fault.of_list [ 0, Fault.After_steps 0; 1, Fault.After_steps 0; 2, Fault.After_steps 0 ]
  in
  let o =
    Sim.run proto ~faults:plan ~inputs:inputs3 ~policy:Sim.Round_robin
      ~flips:(fun () -> true) ~budget:1_000
  in
  Alcotest.(check (list int)) "everyone crashed" [ 0; 1; 2 ] o.Sim.crashed;
  Alcotest.(check int) "no steps taken" 0 o.Sim.steps;
  Alcotest.(check bool) "run ended cleanly, not on budget" false o.Sim.ran_out

let test_rng_state_replay () =
  let proto = Racing.make ~n:3 in
  let plan = Fault.random ~seed:11 ~n:3 ~t:1 ~max_delay:6 in
  let run rng =
    Sim.run proto ~faults:plan ~inputs:inputs3 ~policy:(Sim.Random rng)
      ~flips:(fun () -> Rng.bool rng) ~budget:100_000
  in
  let o = run (Rng.create 2026) in
  (match o.Sim.rng_state with
   | None -> Alcotest.fail "Random policy must record its rng state"
   | Some s ->
     let o' = run (Rng.of_state s) in
     Alcotest.(check int) "same steps" o.Sim.steps o'.Sim.steps;
     Alcotest.(check bool) "same decisions" true (o.Sim.decisions = o'.Sim.decisions);
     Alcotest.(check bool) "same crashes" true (o.Sim.crashed = o'.Sim.crashed));
  (* deterministic policies carry no replay token *)
  let det =
    Sim.run proto ~inputs:inputs3 ~policy:Sim.Round_robin ~flips:(fun () -> true)
      ~budget:100_000
  in
  Alcotest.(check bool) "no rng state for round-robin" true (det.Sim.rng_state = None)

(* --- t-resilience checking -------------------------------------------- *)

let resilient ?budget ~t proto ~n ~max_configs ~max_depth ~solo_budget () =
  Explore.check_t_resilient ?budget ~t proto
    ~inputs_list:(Explore.binary_inputs n) ~max_configs ~max_depth ~solo_budget

let test_racing_is_resilient () =
  (* the acceptance case: racing n=3 survives any n-1 = 2 crashes *)
  List.iter
    (fun t ->
      let r =
        resilient ~t (Racing.make ~n:3) ~n:3 ~max_configs:600 ~max_depth:8
          ~solo_budget:60 ()
      in
      match r.Explore.verdict with
      | Ok () -> ()
      | Error v -> Alcotest.failf "racing not %d-resilient?! %a" t Explore.pp_violation v)
    [ 0; 1; 2 ]

let test_kset_is_resilient () =
  let r =
    resilient ~t:2 (Kset.make ~n:3 ~k:2) ~n:3 ~max_configs:500 ~max_depth:8
      ~solo_budget:50 ()
  in
  Alcotest.(check bool) "kset 2-resilient within bounds" true (r.Explore.verdict = Ok ())

let test_wait_for_all_zero_resilient () =
  (* with nobody crashing, the full group always finishes: the graph is
     finite, so this is exhaustive, not bounded *)
  let r =
    resilient ~t:0 (Broken.wait_for_all ~n:3) ~n:3 ~max_configs:100_000 ~max_depth:200
      ~solo_budget:200 ()
  in
  Alcotest.(check bool) "0-resilient" true (r.Explore.verdict = Ok ());
  Alcotest.(check bool) "exhaustive" false r.Explore.stats.Explore.truncated

let test_wait_for_all_not_one_resilient () =
  let proto = Broken.wait_for_all ~n:3 in
  let r =
    resilient ~t:1 proto ~n:3 ~max_configs:5_000 ~max_depth:20 ~solo_budget:200 ()
  in
  match r.Explore.verdict with
  | Error (Explore.Crash_stuck { crashed; survivors; schedule; _ } as v) ->
    Alcotest.(check int) "one crash suffices" 1 (List.length crashed);
    Alcotest.(check int) "two survivors stuck" 2 (List.length survivors);
    Alcotest.(check (list int)) "witness at the initial configuration" []
      (List.map (fun e -> e.Execution.pid) schedule);
    (* the witness must survive an independent replay *)
    (match Explore.replay proto v with
     | Ok () -> ()
     | Error e -> Alcotest.failf "witness replay failed: %s" e)
  | Error v -> Alcotest.failf "unexpected violation: %a" Explore.pp_violation v
  | Ok () -> Alcotest.fail "wait-for-all should not be 1-resilient"

let test_resilient_t_range_checked () =
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "t = %d rejected" t)
        true
        (match
           resilient ~t (Racing.make ~n:3) ~n:3 ~max_configs:10 ~max_depth:2
             ~solo_budget:5 ()
         with
         | _ -> false
         | exception Invalid_argument _ -> true))
    [ -1; 3 ]

let test_resilient_serial_equals_parallel () =
  let run domains =
    Explore.check_t_resilient ~domains ~t:1 (Racing.make ~n:3)
      ~inputs_list:(Explore.binary_inputs 3) ~max_configs:300 ~max_depth:6
      ~solo_budget:40
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check bool) "same verdict" true (a.Explore.verdict = b.Explore.verdict);
  Alcotest.(check bool) "same stats" true (a.Explore.stats = b.Explore.stats)

(* --- budget: heap high-water guard ------------------------------------ *)

module Budget = Ts_core.Budget

let test_heap_cap_check_trips () =
  (* any live program holds more than one word, so a 1-word allowance is
     already breached; [check] must see it without charging *)
  let b = Budget.create ~max_heap_words:1 () in
  Alcotest.(check bool) "breached reports the heap cap" true
    (Budget.breached b = Some (Budget.Heap_cap 1));
  Alcotest.check_raises "check raises Heap_cap" (Budget.Exhausted (Budget.Heap_cap 1))
    (fun () -> Budget.check b);
  Alcotest.(check int) "check charged nothing" 0 (Budget.spent b)

let test_heap_cap_sampled_on_charge () =
  (* the heap is sampled when the node counter crosses a multiple of 256:
     255 single-node charges stay silent, the 256th trips *)
  let b = Budget.create ~max_heap_words:1 () in
  for _ = 1 to 255 do
    Budget.charge b 1
  done;
  Alcotest.(check int) "255 nodes charged without sampling" 255 (Budget.spent b);
  Alcotest.check_raises "crossing the sample boundary trips"
    (Budget.Exhausted (Budget.Heap_cap 1))
    (fun () -> Budget.charge b 1)

let test_heap_cap_stops_search_cleanly () =
  (* a tripped heap guard must surface as a structured partial result, not
     an exception out of the checker *)
  let r =
    Explore.check_consensus (Racing.make ~n:3)
      ~budget:(Budget.create ~max_heap_words:1 ())
      ~inputs_list:(Explore.binary_inputs 3) ~max_configs:100_000 ~max_depth:50
      ~solo_budget:60 ~check_solo:true
  in
  Alcotest.(check bool) "stopped on the heap cap" true
    (r.Explore.stopped = Some (Budget.Heap_cap 1));
  Alcotest.(check bool) "result marked truncated" true
    r.Explore.stats.Explore.truncated;
  Alcotest.(check bool) "partial verdict, not a violation" true
    (r.Explore.verdict = Ok ())

let test_crash_stuck_pp () =
  let r =
    resilient ~t:1 (Broken.wait_for_all ~n:3) ~n:3 ~max_configs:2_000 ~max_depth:10
      ~solo_budget:100 ()
  in
  match r.Explore.verdict with
  | Error v ->
    let s = Format.asprintf "%a" Explore.pp_violation v in
    Alcotest.(check bool) "mentions resilience" true (contains ~needle:"resilience" s)
  | Ok () -> Alcotest.fail "expected a crash-stuck violation"

let suite =
  ( "fault-injection",
    [
      Alcotest.test_case "plan validation" `Quick test_plan_validation;
      Alcotest.test_case "seeded random plans" `Quick test_random_plan_seeded;
      Alcotest.test_case "crash after k steps" `Quick test_crash_after_k_steps;
      Alcotest.test_case "before-write crash loses the write" `Quick
        test_before_write_loses_the_write;
      Alcotest.test_case "decided processes cannot crash" `Quick
        test_decided_process_cannot_crash;
      Alcotest.test_case "all-crashed run terminates" `Quick test_all_crashed_terminates;
      Alcotest.test_case "rng state replays a random run" `Quick test_rng_state_replay;
      Alcotest.test_case "racing is (n-1)-resilient" `Quick test_racing_is_resilient;
      Alcotest.test_case "k-set agreement is resilient" `Quick test_kset_is_resilient;
      Alcotest.test_case "wait-for-all is 0-resilient" `Quick
        test_wait_for_all_zero_resilient;
      Alcotest.test_case "wait-for-all is not 1-resilient" `Quick
        test_wait_for_all_not_one_resilient;
      Alcotest.test_case "t range enforced" `Quick test_resilient_t_range_checked;
      Alcotest.test_case "resilience: serial = parallel" `Quick
        test_resilient_serial_equals_parallel;
      Alcotest.test_case "crash-stuck pretty-printing" `Quick test_crash_stuck_pp;
      Alcotest.test_case "budget: heap cap trips check" `Quick test_heap_cap_check_trips;
      Alcotest.test_case "budget: heap sampled at charge boundary" `Quick
        test_heap_cap_sampled_on_charge;
      Alcotest.test_case "budget: heap cap stops a search cleanly" `Quick
        test_heap_cap_stops_search_cleanly;
    ] )
