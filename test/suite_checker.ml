(* The bounded model checker. *)
open Ts_model
open Ts_checker
open Ts_protocols

let test_binary_inputs () =
  Alcotest.(check int) "2^3 vectors" 8 (List.length (Explore.binary_inputs 3));
  let all = Explore.binary_inputs 2 in
  Alcotest.(check bool) "vectors distinct" true
    (List.length (List.sort_uniq compare (List.map Array.to_list all)) = 4);
  List.iter
    (fun v -> Array.iter (fun x -> Alcotest.(check bool) "binary" true (Value.to_int x < 2)) v)
    all

let test_stats_reported () =
  let r =
    Explore.check_consensus (Racing.make ~n:2)
      ~inputs_list:[ [| Value.int 0; Value.int 1 |] ]
      ~max_configs:2_000 ~max_depth:25 ~solo_budget:100 ~check_solo:false
  in
  Alcotest.(check bool) "explored some" true (r.Explore.stats.Explore.configs_explored > 100);
  Alcotest.(check bool) "truncated (racing is infinite-state)" true r.Explore.stats.Explore.truncated;
  Alcotest.(check bool) "depth recorded" true (r.Explore.stats.Explore.deepest > 5)

let test_tiny_exhaustive_not_truncated () =
  (* the constant protocol has a tiny graph: exploration completes *)
  let r =
    Explore.check_consensus (Broken.oblivious_seven ~n:2)
      ~inputs_list:[ [| Value.int 7; Value.int 7 |] ]
      ~max_configs:1_000 ~max_depth:20 ~solo_budget:10 ~check_solo:true
  in
  (* inputs are 7 so deciding 7 is valid here; graph is finite *)
  Alcotest.(check bool) "verdict ok" true (r.Explore.verdict = Ok ());
  Alcotest.(check bool) "not truncated" false r.Explore.stats.Explore.truncated

let test_first_violation_stops_search () =
  let r =
    Explore.check_consensus (Broken.last_write_wins ~n:2)
      ~inputs_list:(Explore.binary_inputs 2) ~max_configs:100_000 ~max_depth:30
      ~solo_budget:50 ~check_solo:false
  in
  match r.Explore.verdict with
  | Error (Explore.Agreement_violation { values; _ }) ->
    Alcotest.(check int) "two values decided" 2 (List.length values)
  | _ -> Alcotest.fail "expected agreement violation"

let test_solo_check_flag () =
  (* with check_solo:false the insomniac passes; with true it is caught *)
  let run check_solo =
    (Explore.check_consensus (Broken.insomniac ~n:2)
       ~inputs_list:[ [| Value.int 0; Value.int 0 |] ]
       ~max_configs:100 ~max_depth:10 ~solo_budget:50 ~check_solo)
      .Explore.verdict
  in
  Alcotest.(check bool) "lenient without solo check" true (run false = Ok ());
  Alcotest.(check bool) "caught with solo check" true (run true <> Ok ())

let test_violation_pp () =
  let r =
    Explore.check_consensus (Broken.oblivious_seven ~n:2)
      ~inputs_list:[ [| Value.int 0; Value.int 0 |] ]
      ~max_configs:100 ~max_depth:10 ~solo_budget:10 ~check_solo:false
  in
  match r.Explore.verdict with
  | Error v ->
    let s = Format.asprintf "%a" Explore.pp_violation v in
    Alcotest.(check bool) "violation prints" true (String.length s > 10)
  | Ok () -> Alcotest.fail "expected validity violation"

(* Every reported violation must replay: re-applying its schedule from the
   initial configuration reproduces the same property failure. *)
let violation_of proto ~check_solo =
  let n = proto.Protocol.num_processes in
  let r =
    Explore.check_consensus proto ~inputs_list:(Explore.binary_inputs n)
      ~max_configs:50_000 ~max_depth:30 ~solo_budget:50 ~check_solo
  in
  match r.Explore.verdict with
  | Error v -> v
  | Ok () -> Alcotest.failf "%s: expected a violation" proto.Protocol.name

let test_replay_agreement () =
  let proto = Broken.last_write_wins ~n:2 in
  match violation_of proto ~check_solo:false with
  | Explore.Agreement_violation _ as v ->
    Alcotest.(check (result unit string)) "replays" (Ok ()) (Explore.replay proto v)
  | v -> Alcotest.failf "wrong kind: %a" Explore.pp_violation v

let test_replay_validity () =
  let proto = Broken.oblivious_seven ~n:2 in
  match violation_of proto ~check_solo:false with
  | Explore.Validity_violation _ as v ->
    Alcotest.(check (result unit string)) "replays" (Ok ()) (Explore.replay proto v)
  | v -> Alcotest.failf "wrong kind: %a" Explore.pp_violation v

let test_replay_solo_stuck () =
  let proto = Broken.insomniac ~n:2 in
  match violation_of proto ~check_solo:true with
  | Explore.Solo_stuck _ as v ->
    Alcotest.(check (result unit string)) "replays" (Ok ()) (Explore.replay proto v)
  | v -> Alcotest.failf "wrong kind: %a" Explore.pp_violation v

let test_replay_rejects_tampering () =
  let proto = Broken.oblivious_seven ~n:2 in
  match violation_of proto ~check_solo:false with
  | Explore.Validity_violation { inputs; schedule; value = _ } ->
    (* claim an input value was the invalid decision: replay must refuse *)
    let forged = Explore.Validity_violation { inputs; schedule; value = Value.int 0 } in
    Alcotest.(check bool) "forged witness rejected" true
      (Explore.replay proto forged <> Ok ());
    (* claim a bogus solo-stuck on a protocol whose processes decide *)
    let bogus =
      Explore.Solo_stuck { inputs = [| Value.int 0; Value.int 0 |]; schedule = []; pid = 0 }
    in
    Alcotest.(check bool) "bogus stuck witness rejected" true
      (Explore.replay proto bogus <> Ok ())
  | v -> Alcotest.failf "wrong kind: %a" Explore.pp_violation v

let test_budget_partial_result () =
  (* a tripped budget yields a structured partial result, not an exception *)
  let budget = Ts_core.Budget.create ~max_nodes:50 () in
  let r =
    Explore.check_consensus ~budget (Racing.make ~n:2)
      ~inputs_list:(Explore.binary_inputs 2) ~max_configs:1_000_000 ~max_depth:100
      ~solo_budget:50 ~check_solo:false
  in
  (match r.Explore.stopped with
   | Some (Ts_core.Budget.Node_cap _) -> ()
   | Some b -> Alcotest.failf "wrong breach: %a" Ts_core.Budget.pp_breach b
   | None -> Alcotest.fail "expected the node cap to trip");
  Alcotest.(check bool) "partial is marked truncated" true r.Explore.stats.Explore.truncated;
  Alcotest.(check bool) "verdict covers the explored part" true (r.Explore.verdict = Ok ());
  (* unlimited budget on the same call never sets [stopped] *)
  let r' =
    Explore.check_consensus (Racing.make ~n:2)
      ~inputs_list:(Explore.binary_inputs 2) ~max_configs:1_000 ~max_depth:20
      ~solo_budget:50 ~check_solo:false
  in
  Alcotest.(check bool) "no breach unlimited" true (r'.Explore.stopped = None)

let suite =
  ( "checker",
    [
      Alcotest.test_case "binary input vectors" `Quick test_binary_inputs;
      Alcotest.test_case "stats reported" `Quick test_stats_reported;
      Alcotest.test_case "finite graphs fully explored" `Quick test_tiny_exhaustive_not_truncated;
      Alcotest.test_case "first violation stops search" `Quick test_first_violation_stops_search;
      Alcotest.test_case "solo check flag" `Quick test_solo_check_flag;
      Alcotest.test_case "violation pretty-printing" `Quick test_violation_pp;
      Alcotest.test_case "replay: agreement witness" `Quick test_replay_agreement;
      Alcotest.test_case "replay: validity witness" `Quick test_replay_validity;
      Alcotest.test_case "replay: solo-stuck witness" `Quick test_replay_solo_stuck;
      Alcotest.test_case "replay rejects tampered witnesses" `Quick
        test_replay_rejects_tampering;
      Alcotest.test_case "budget yields partial results" `Quick test_budget_partial_result;
    ] )
