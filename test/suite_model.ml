(* Configurations, stepping, schedules, executions. *)
open Ts_model

(* A tiny deterministic 2-process protocol used as a fixture: p writes its
   input to register p, reads the other register, decides what it read if
   non-bot, else its own input. *)
type tiny =
  | W of int * int  (* me, input *)
  | R of int * int
  | D of Value.t

let tiny : tiny Protocol.t =
  {
    name = "tiny";
    description = "write own register, read the other, decide";
    num_processes = 2;
    num_registers = 2;
    init = (fun ~pid ~input -> W (pid, Value.to_int input));
    poised =
      (function
        | W (me, input) -> Action.Write (me, Value.int input)
        | R (me, _) -> Action.Read (1 - me)
        | D v -> Action.Decide v);
    on_read =
      (fun st v ->
        match st with
        | R (_, input) -> D (if Value.is_bot v then Value.int input else v)
        | _ -> assert false);
    on_write = (function W (me, input) -> R (me, input) | _ -> assert false);
    on_swap = Protocol.no_swap;
    on_flip = Protocol.no_flip;
    pp_state = (fun ppf _ -> Fmt.string ppf "tiny");
    encode = Protocol.Generic;
  }

let inputs01 = [| Value.int 0; Value.int 1 |]

let test_initial () =
  let cfg = Config.initial tiny ~inputs:inputs01 in
  Alcotest.(check bool) "regs are bot" true (Value.is_bot (Config.register cfg 0));
  Alcotest.(check bool) "no decisions" true (Config.decided_values cfg = []);
  Alcotest.check_raises "wrong arity" (Invalid_argument "Config.initial: wrong number of inputs")
    (fun () -> ignore (Config.initial tiny ~inputs:[| Value.int 0 |]))

let test_step_write_read_decide () =
  let cfg = Config.initial tiny ~inputs:inputs01 in
  let cfg, a1 = Config.step tiny cfg 0 ~coin:None in
  Alcotest.(check bool) "write action" true (Action.is_write a1);
  Alcotest.(check int) "reg updated" 0 (Value.to_int (Config.register cfg 0));
  let cfg, a2 = Config.step tiny cfg 0 ~coin:None in
  Alcotest.(check bool) "read action" true (Action.is_read a2);
  let cfg, a3 = Config.step tiny cfg 0 ~coin:None in
  Alcotest.(check bool) "decide action" true (Action.is_decide a3);
  Alcotest.(check bool) "decision recorded" true (Config.has_decided cfg 0 <> None);
  Alcotest.check_raises "stepping decided process"
    (Invalid_argument "Config.step: process has decided") (fun () ->
      ignore (Config.step tiny cfg 0 ~coin:None))

let test_coin_misuse () =
  let cfg = Config.initial tiny ~inputs:inputs01 in
  Alcotest.check_raises "coin on non-flip"
    (Invalid_argument "Config.step: coin supplied to a non-flip step") (fun () ->
      ignore (Config.step tiny cfg 0 ~coin:(Some true)))

let test_covers () =
  let cfg = Config.initial tiny ~inputs:inputs01 in
  Alcotest.(check (option int)) "p0 covers R0" (Some 0) (Config.covers tiny cfg 0);
  Alcotest.(check (option int)) "p1 covers R1" (Some 1) (Config.covers tiny cfg 1);
  Alcotest.(check (list int)) "covered set" [ 0; 1 ]
    (Config.covered_registers tiny cfg (Pset.all 2));
  Alcotest.(check bool) "well spread" true (Config.covering_is_distinct tiny cfg (Pset.all 2));
  let cfg', _ = Config.step tiny cfg 0 ~coin:None in
  Alcotest.(check (option int)) "after write p0 covers nothing" None
    (Config.covers tiny cfg' 0);
  Alcotest.(check bool) "not well spread when someone reads" false
    (Config.covering_is_distinct tiny cfg' (Pset.all 2))

let test_apply_and_trace () =
  let cfg = Config.initial tiny ~inputs:inputs01 in
  let sched = [ Execution.ev 0; Execution.ev 1; Execution.ev 0; Execution.ev 0 ] in
  let cfg', trace = Execution.apply tiny cfg sched in
  Alcotest.(check int) "trace length" 4 (List.length trace);
  Alcotest.(check (list int)) "written" [ 0; 1 ] (Execution.written_registers trace);
  Alcotest.(check (list int)) "accessed" [ 0; 1 ] (Execution.accessed_registers trace);
  Alcotest.(check (list int)) "participants" [ 0; 1 ]
    (Pset.to_list (Execution.participants trace));
  (* p0 read p1's write of 1, so decides 1 *)
  Alcotest.(check (option int)) "p0 decided 1" (Some 1)
    (Option.map Value.to_int (Config.has_decided cfg' 0))

let test_schedule_of_trace_roundtrip () =
  let cfg = Config.initial tiny ~inputs:inputs01 in
  let sched = [ Execution.ev 1; Execution.ev 0; Execution.ev 1; Execution.ev 1 ] in
  let _, trace = Execution.apply tiny cfg sched in
  Alcotest.(check bool) "schedule recovered" true
    (Execution.schedule_of_trace trace = sched);
  let cfg1, _ = Execution.apply tiny cfg sched in
  let cfg2, _ = Execution.apply_trace tiny cfg trace in
  Alcotest.(check bool) "replay equal" true (Config.equal cfg1 cfg2)

let test_solo () =
  let cfg = Config.initial tiny ~inputs:inputs01 in
  let _, trace, decision = Execution.solo tiny cfg 0 ~flips:(fun _ -> true) ~budget:10 in
  Alcotest.(check (option int)) "solo decides own input" (Some 0)
    (Option.map Value.to_int decision);
  Alcotest.(check int) "solo takes 3 steps" 3 (List.length trace);
  let _, _, none = Execution.solo tiny cfg 0 ~flips:(fun _ -> true) ~budget:1 in
  Alcotest.(check bool) "budget respected" true (none = None)

let test_sim_policies () =
  let p = Ts_protocols.Racing.make ~n:3 in
  let inputs = [| Value.int 1; Value.int 1; Value.int 0 |] in
  let solo = Sim.run p ~inputs ~policy:(Sim.Solo 2) ~flips:(fun () -> true) ~budget:5000 in
  Alcotest.(check bool) "solo decides own input" true
    (solo.Sim.decisions = [ 2, Value.int 0 ]);
  let rr = Sim.run p ~inputs ~policy:Sim.Round_robin ~flips:(fun () -> true) ~budget:100_000 in
  Alcotest.(check bool) "round robin all decide" true (List.length rr.Sim.decisions = 3);
  (match Sim.agreement rr with
   | Ok v -> Alcotest.(check bool) "valid" true (Sim.valid ~inputs v)
   | Error _ -> Alcotest.fail "round robin disagreement");
  let rng = Rng.create 99 in
  let rnd = Sim.run p ~inputs ~policy:(Sim.Random rng) ~flips:(fun () -> Rng.bool rng) ~budget:100_000 in
  Alcotest.(check bool) "random all decide" true (not rnd.Sim.ran_out)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed same stream" xs ys;
  let p = Rng.permutation (Rng.create 7) 10 in
  Alcotest.(check (list int)) "permutation is a permutation" (List.init 10 Fun.id)
    (List.sort compare (Array.to_list p))

let prop_rng_bounds =
  QCheck.Test.make ~name:"Rng.int within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let suite =
  ( "model",
    [
      Alcotest.test_case "initial configuration" `Quick test_initial;
      Alcotest.test_case "step write/read/decide" `Quick test_step_write_read_decide;
      Alcotest.test_case "coin misuse rejected" `Quick test_coin_misuse;
      Alcotest.test_case "covering detection" `Quick test_covers;
      Alcotest.test_case "apply and trace accounting" `Quick test_apply_and_trace;
      Alcotest.test_case "schedule/trace round trip" `Quick test_schedule_of_trace_roundtrip;
      Alcotest.test_case "solo runs" `Quick test_solo;
      Alcotest.test_case "sim policies" `Quick test_sim_policies;
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
      QCheck_alcotest.to_alcotest prop_rng_bounds;
    ] )
