(* The second lower-bound engine and the two-engine crosscheck gate.

   The heart of this suite is differential: both engines run over the
   registry and must claim the same bound with witnesses that replay —
   under generous budgets, under tight ones, and under crash-fault
   plans.  A QCheck property widens the net to randomly generated
   straight-line protocols where the n-1 bound is reachable by
   construction. *)
open Ts_model
open Ts_core
open Ts_protocols
module Rev = Ts_revisionist.Revisionist
module Cert = Ts_cert.Cert
module Crosscheck = Ts_analysis.Crosscheck
module Registry = Ts_analysis.Registry

let complete = function
  | Rev.Complete c -> c
  | Rev.Partial (stop, _) ->
    Alcotest.failf "expected a certificate, engine stopped: %a" Rev.pp_stop stop

let test_construct_racing2 () =
  let proto = Racing.make ~n:2 in
  let c = complete (Rev.construct proto) in
  Alcotest.(check int) "bound is n-1" 1 c.Rev.bound;
  Alcotest.(check int) "one process parked" 1 (List.length c.Rev.parked);
  Alcotest.(check bool) "at least bound registers written" true
    (List.length c.Rev.registers_written >= c.Rev.bound);
  (match Rev.verify c proto with
   | Ok () -> ()
   | Error m -> Alcotest.failf "verify rejected a fresh certificate: %s" m);
  Alcotest.(check (list int)) "nobody excluded" [] c.Rev.excluded

let test_verify_catches_tamper () =
  let proto = Racing.make ~n:2 in
  let c = complete (Rev.construct proto) in
  let bad = { c with Rev.bound = c.Rev.bound + 1 } in
  Alcotest.(check bool) "inflated bound rejected" true
    (Result.is_error (Rev.verify bad proto));
  let bad = { c with Rev.schedule = [] } in
  Alcotest.(check bool) "emptied schedule rejected" true
    (Result.is_error (Rev.verify bad proto))

(* The registry differential: on every entry the gate expects agreement
   on, both engines must complete with the same bound and each witness
   must replay — the same invariant [tightspace crosscheck] gates CI on,
   asserted here engine-to-engine without the CLI in between. *)
let both_engines proto ~budget_l ~budget_r =
  let lemmas =
    match Theorem.theorem1_escalate ~budget:budget_l proto ~initial_horizon:8 with
    | Theorem.Complete c, _ -> c
    | Theorem.Partial _, _ -> Alcotest.fail "lemmas engine stopped"
  in
  let rev =
    match Rev.escalate ~budget:budget_r proto ~initial_solo:32 with
    | Rev.Complete c, _ -> c
    | Rev.Partial (stop, _), _ ->
      Alcotest.failf "revisionist engine stopped: %a" Rev.pp_stop stop
  in
  (lemmas, rev)

let check_agreement name proto ~budget_l ~budget_r =
  let lemmas, rev = both_engines proto ~budget_l ~budget_r in
  (match Theorem.verify lemmas proto with
   | Ok () -> ()
   | Error m -> Alcotest.failf "%s: lemmas witness rejected: %s" name m);
  (match Rev.verify rev proto with
   | Ok () -> ()
   | Error m -> Alcotest.failf "%s: revisionist witness rejected: %s" name m);
  match Outcome.agree (Outcome.of_theorem lemmas) (Rev.summary rev) with
  | Ok bound ->
    Alcotest.(check int)
      (name ^ ": agreed bound is n-1")
      (proto.Protocol.num_processes - 1)
      bound
  | Error m -> Alcotest.failf "%s: engines diverge: %s" name m

let agree_entries () =
  List.filter
    (fun e -> e.Registry.xcheck = Registry.Expect_agree)
    (Registry.all ())

let test_registry_differential () =
  let entries = agree_entries () in
  Alcotest.(check bool) "registry declares agreement entries" true
    (List.length entries >= 3);
  List.iter
    (fun e ->
      let (Protocol.Packed proto) = e.Registry.protocol in
      check_agreement e.Registry.cli_name proto
        ~budget_l:(Budget.create ~deadline:30.0 ())
        ~budget_r:(Budget.create ~deadline:30.0 ()))
    entries

(* The same differential under a tight node cap: either both engines
   still complete and agree, or the capped engine reports a structured
   budget partial — never an exception, never a witness that does not
   replay. *)
let test_differential_under_budget_caps () =
  List.iter
    (fun e ->
      let (Protocol.Packed proto) = e.Registry.protocol in
      let name = e.Registry.cli_name in
      match
        Rev.escalate
          ~budget:(Budget.create ~max_nodes:40 ())
          proto ~initial_solo:32
      with
      | Rev.Complete c, _ ->
        (match Rev.verify c proto with
         | Ok () -> check_agreement name proto
                      ~budget_l:(Budget.create ~deadline:30.0 ())
                      ~budget_r:(Budget.create ~max_nodes:40 ())
         | Error m -> Alcotest.failf "%s: capped witness rejected: %s" name m)
      | Rev.Partial (Rev.Out_of_budget (Budget.Node_cap cap), p), _ ->
        Alcotest.(check int) "breach names the cap" 40 cap;
        Alcotest.(check bool) "progress counters populated" true
          (p.Rev.private_steps > 0)
      | Rev.Partial (stop, _), _ ->
        Alcotest.failf "%s: expected node-cap partial, got %a" name Rev.pp_stop
          stop)
    (agree_entries ())

let test_tiny_budget_is_partial () =
  let proto = Racing.make ~n:3 in
  match Rev.construct ~budget:(Budget.create ~max_nodes:1 ()) proto with
  | Rev.Partial (Rev.Out_of_budget (Budget.Node_cap 1), _) -> ()
  | Rev.Partial (stop, _) ->
    Alcotest.failf "wrong stop: %a" Rev.pp_stop stop
  | Rev.Complete _ -> Alcotest.fail "one node cannot complete a construction"

(* Crash-fault plans: crashed processes are excluded from the start, the
   bound drops to survivors-1 and the witness never schedules them. *)
let test_fault_plan_drops_bound () =
  let proto = Racing.make ~n:3 in
  let c = complete (Rev.construct ~faults:(Fault.crash_after 2 0) proto) in
  Alcotest.(check (list int)) "p2 excluded" [ 2 ] c.Rev.excluded;
  Alcotest.(check int) "bound is survivors-1" 1 c.Rev.bound;
  Alcotest.(check bool) "p2 never scheduled" true
    (List.for_all (fun (ev : Execution.event) -> ev.Execution.pid <> 2)
       c.Rev.schedule);
  match Rev.verify c proto with
  | Ok () -> ()
  | Error m -> Alcotest.failf "faulted witness rejected: %s" m

let test_fault_needs_two_survivors () =
  let proto = Racing.make ~n:2 in
  Alcotest.(check bool) "1 survivor refused" true
    (match Rev.construct ~faults:(Fault.crash_after 1 0) proto with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* The agreement differential must also hold with faults on both sides:
   both engines see the same survivor set... the lemmas engine has no
   fault mode, so assert the revisionist bound directly against the
   survivor arithmetic instead. *)
let test_fault_bound_arithmetic () =
  List.iter
    (fun n ->
      let proto = Racing.make ~n in
      let c = complete (Rev.construct ~faults:(Fault.crash_after (n - 1) 0) proto) in
      Alcotest.(check int)
        (Printf.sprintf "n=%d, one crash: bound n-2" n)
        (n - 2) c.Rev.bound)
    [ 3; 4 ]

(* Certificates from revisionist witnesses go through the same
   certificate stack as first-engine ones: engine replay, independent
   micro-checker, and rejection of the excluded-process case (a
   survivors-1 claim is not the n-1 theorem). *)
let test_certificate_roundtrip () =
  let proto = Racing.make ~n:2 in
  let c = complete (Rev.construct proto) in
  let cert = Cert.of_revisionist proto c in
  (match Cert.validate proto cert with
   | Ok () -> ()
   | Error m -> Alcotest.failf "engine replay rejected: %s" m);
  (match Cert.microcheck cert with
   | Ok () -> ()
   | Error m -> Alcotest.failf "micro-checker rejected: %s" m);
  match Cert.of_string (Cert.to_string cert) with
  | Ok cert' ->
    Alcotest.(check string) "serialization round-trips"
      (Cert.to_string cert) (Cert.to_string cert')
  | Error m -> Alcotest.failf "re-parse failed: %s" m

let test_certificate_refuses_faulted () =
  let proto = Racing.make ~n:3 in
  let c = complete (Rev.construct ~faults:(Fault.crash_after 2 0) proto) in
  Alcotest.(check bool) "faulted run yields no space_bound certificate" true
    (match Cert.of_revisionist proto c with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* The gate itself: the full-registry report is ok (agreements where
   expected) and the planted broken-scribbler fixture is caught as a
   divergence — the property CI's [tightspace crosscheck] runs depend
   on. *)
let test_crosscheck_report () =
  let r = Crosscheck.run () in
  Alcotest.(check bool) "crosscheck gate passes on the registry" true
    r.Crosscheck.ok;
  let row name =
    List.find (fun (row : Crosscheck.row) -> row.Crosscheck.name = name)
      r.Crosscheck.rows
  in
  (match (row "broken-scribbler").Crosscheck.verdict with
   | Crosscheck.Diverged _ -> ()
   | v ->
     Alcotest.failf "planted fixture not caught: %a" Crosscheck.pp_row
       { (row "broken-scribbler") with Crosscheck.verdict = v });
  match (row "racing").Crosscheck.verdict with
  | Crosscheck.Agreed 1 -> ()
  | _ -> Alcotest.fail "racing should agree on bound 1"

(* Random straight-line protocols: process p performs a few reads of
   shared registers, writes its own private register (index p, disjoint
   from the read pool by construction: reads target n..n+2), then
   decides its input.  Every process's first write is fresh, so the
   revisionist construction must complete with bound exactly n-1, and
   the witness must replay. *)
type straightline = { prog : Action.t list }

let straightline_protocol ~n ~reads =
  (* reads.(p) is the list of registers p reads before announcing *)
  {
    Protocol.name = Printf.sprintf "straightline-%d" n;
    description = "random reads, one fresh write, decide input";
    num_processes = n;
    num_registers = n + 3;
    init =
      (fun ~pid ~input ->
        {
          prog =
            List.map (fun r -> Action.Read r) reads.(pid)
            @ [ Action.Write (pid, input); Action.Decide input ];
        });
    poised =
      (fun st ->
        match st.prog with a :: _ -> a | [] -> assert false);
    on_read = (fun st _ -> { prog = List.tl st.prog });
    on_write = (fun st -> { prog = List.tl st.prog });
    on_swap = Protocol.no_swap;
    on_flip = Protocol.no_flip;
    pp_state =
      (fun ppf st -> Fmt.pf ppf "straightline(%d left)" (List.length st.prog));
    encode = Protocol.Generic;
  }

let prop_straightline_completes =
  QCheck.Test.make ~name:"revisionist: straight-line protocols reach n-1"
    ~count:60
    QCheck.(pair (int_range 2 5) (list_of_size (Gen.int_range 0 8) (int_range 0 2)))
    (fun (n, shape) ->
      (* the shrinker may step outside the generator's range *)
      QCheck.assume (n >= 2 && n <= 5 && List.length shape <= 8);
      let reads =
        Array.init n (fun p ->
            (* vary the read prefix per process from the generated shape *)
            List.filteri (fun i _ -> (i + p) mod 2 = 0) shape
            |> List.map (fun r -> n + r))
      in
      let proto = straightline_protocol ~n ~reads in
      match Rev.construct ~max_solo:16 proto with
      | Rev.Complete c ->
        c.Rev.bound = n - 1
        && Rev.verify c proto = Ok ()
        && List.length c.Rev.registers_written >= n - 1
      | Rev.Partial _ -> false)

let prop_complete_implies_verified =
  QCheck.Test.make
    ~name:"revisionist: racing at random n always verifies and agrees"
    ~count:20
    QCheck.(int_range 2 4)
    (fun n ->
      let proto = Racing.make ~n in
      match Rev.escalate proto ~initial_solo:(10 * n) with
      | Rev.Complete c, _ ->
        c.Rev.bound = n - 1 && Rev.verify c proto = Ok ()
      | Rev.Partial _, _ -> false)

let suite =
  ( "revisionist",
    [
      Alcotest.test_case "construct racing n=2" `Quick test_construct_racing2;
      Alcotest.test_case "verify catches tampering" `Quick
        test_verify_catches_tamper;
      Alcotest.test_case "registry differential (both engines agree)" `Quick
        test_registry_differential;
      Alcotest.test_case "differential under budget caps" `Quick
        test_differential_under_budget_caps;
      Alcotest.test_case "tiny budget degrades to partial" `Quick
        test_tiny_budget_is_partial;
      Alcotest.test_case "crash plan drops the bound" `Quick
        test_fault_plan_drops_bound;
      Alcotest.test_case "fewer than 2 survivors refused" `Quick
        test_fault_needs_two_survivors;
      Alcotest.test_case "fault bound arithmetic" `Quick
        test_fault_bound_arithmetic;
      Alcotest.test_case "certificate round-trip" `Quick
        test_certificate_roundtrip;
      Alcotest.test_case "no certificate for faulted runs" `Quick
        test_certificate_refuses_faulted;
      Alcotest.test_case "crosscheck gate + planted divergence" `Quick
        test_crosscheck_report;
      QCheck_alcotest.to_alcotest prop_straightline_completes;
      QCheck_alcotest.to_alcotest prop_complete_implies_verified;
    ] )
