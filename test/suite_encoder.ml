(* Bit streams and the Fan–Lynch codec. *)
open Ts_model
open Ts_mutex
open Ts_encoder

let test_bits_roundtrip_bits () =
  let w = Bits.writer () in
  let pattern = [ true; false; false; true; true; true; false; true; false ] in
  List.iter (Bits.write_bit w) pattern;
  Alcotest.(check int) "bit length" (List.length pattern) (Bits.bit_length w);
  let r = Bits.reader (Bits.contents w) in
  let back = List.map (fun _ -> Bits.read_bit r) pattern in
  Alcotest.(check (list bool)) "bits round trip" pattern back;
  Alcotest.(check int) "nothing remains" 0 (Bits.remaining r)

let test_gamma_known_lengths () =
  (* gamma(k) costs 2*floor(log2 k) + 1 bits *)
  List.iter
    (fun (k, len) ->
      let w = Bits.writer () in
      Bits.write_gamma w k;
      Alcotest.(check int) (Printf.sprintf "gamma %d length" k) len (Bits.bit_length w))
    [ 1, 1; 2, 3; 3, 3; 4, 5; 7, 5; 8, 7; 1000, 19 ]

let test_gamma_rejects_nonpositive () =
  let w = Bits.writer () in
  Alcotest.check_raises "zero" (Invalid_argument "Bits.write_gamma: k must be positive")
    (fun () -> Bits.write_gamma w 0)

let test_read_past_end () =
  let w = Bits.writer () in
  Bits.write_bit w true;
  let r = Bits.reader (Bits.contents w) in
  ignore (Bits.read_bit r);
  Alcotest.check_raises "past end" (Invalid_argument "Bits.read_bit: past end of stream")
    (fun () -> ignore (Bits.read_bit r))

let prop_gamma_roundtrip =
  QCheck.Test.make ~name:"gamma round trip" ~count:500 QCheck.(int_range 1 1_000_000)
    (fun k ->
      let w = Bits.writer () in
      Bits.write_gamma w k;
      let r = Bits.reader (Bits.contents w) in
      Bits.read_gamma r = k)

let prop_gamma_sequence_roundtrip =
  QCheck.Test.make ~name:"gamma sequences round trip" ~count:200
    QCheck.(list_of_size Gen.(1 -- 30) (int_range 1 10_000))
    (fun ks ->
      let w = Bits.writer () in
      List.iter (Bits.write_gamma w) ks;
      let r = Bits.reader (Bits.contents w) in
      List.for_all (fun k -> Bits.read_gamma r = k) ks)

let algorithms n =
  [
    Algorithm.Packed (Peterson.make ~n);
    Algorithm.Packed (Tournament.make ~n);
    Algorithm.Packed (Tas_lock.make ~n);
  ]

let test_codec_serial_roundtrip () =
  List.iter
    (fun n ->
      List.iter
        (fun seed ->
          let order = Rng.permutation (Rng.create seed) n in
          List.iter
            (fun (Algorithm.Packed alg) ->
              let o = Arena.serial alg ~order in
              match Codec.round_trip alg o with
              | Ok _ -> ()
              | Error e -> Alcotest.failf "%s n=%d: %s" o.Arena.algorithm n e)
            (algorithms n))
        [ 1; 2; 3 ])
    [ 2; 4; 7 ]

let test_codec_contended_roundtrip () =
  List.iter
    (fun n ->
      List.iter
        (fun (Algorithm.Packed alg) ->
          let o = Arena.contended alg in
          match Codec.round_trip alg o with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "%s n=%d contended: %s" o.Arena.algorithm n e)
        (algorithms n))
    [ 2; 3; 8 ]

let test_decoder_recovers_permutation () =
  (* the information-theoretic heart: the bits alone determine π *)
  let n = 6 in
  let alg = Tournament.make ~n in
  List.iter
    (fun seed ->
      let order = Rng.permutation (Rng.create seed) n in
      let o = Arena.serial alg ~order in
      let enc = Codec.encode o in
      (* decode on a *fresh* algorithm instance *)
      let o' = Codec.decode (Tournament.make ~n) enc in
      Alcotest.(check (list int)) "π recovered from bits" (Array.to_list order) o'.Arena.cs_order)
    [ 11; 12; 13; 14 ]

let test_distinct_orders_give_distinct_encodings () =
  let n = 5 in
  let alg = Peterson.make ~n in
  let encs =
    List.map
      (fun seed ->
        let order = Rng.permutation (Rng.create seed) n in
        let o = Arena.serial alg ~order in
        order, (Codec.encode o).Codec.bits)
      [ 1; 2; 3; 4; 5; 6 ]
  in
  List.iteri
    (fun i (oi, bi) ->
      List.iteri
        (fun j (oj, bj) ->
          if i < j && oi <> oj then
            Alcotest.(check bool) "different π, different bits" true (bi <> bj))
        encs)
    encs

let test_bits_exceed_entropy () =
  (* some permutation needs >= log2 n! bits; our encodings, averaged over
     random permutations, must sit above that floor *)
  let n = 8 in
  let alg = Tournament.make ~n in
  let total =
    List.fold_left
      (fun acc seed ->
        let order = Rng.permutation (Rng.create seed) n in
        let o = Arena.serial alg ~order in
        acc + snd (Codec.encode o).Codec.bits)
      0 (List.init 10 (fun i -> i + 1))
  in
  let avg = float_of_int total /. 10. in
  Alcotest.(check bool) "average bits above log2 n!" true
    (avg >= Ts_core.Bounds.log2_factorial n)

let test_decode_rejects_inflated_run () =
  (* hand-craft a corrupt encoding: "process 0 takes 1000 consecutive
     steps" — it completes its operation long before that, so the decoder
     must reject the bits rather than silently discarding the [`Done] *)
  let w = Bits.writer () in
  Bits.write_gamma w 2 (* n *);
  Bits.write_gamma w (2 + 1) (* two events *);
  (* Start 0: mtf rank 0 *)
  Bits.write_gamma w 1;
  Bits.write_bit w false;
  (* Run (0, 1000): mtf rank 0 again *)
  Bits.write_gamma w 1;
  Bits.write_bit w true;
  Bits.write_gamma w 1000;
  let enc = { Codec.bits = Bits.contents w; events = 2 } in
  Alcotest.check_raises "mid-run completion rejected"
    (Invalid_argument "Codec.decode: process finished mid-run (corrupt encoding)")
    (fun () -> ignore (Codec.decode (Tas_lock.make ~n:2) enc))

let test_decode_rejects_wrong_n () =
  let o = Arena.serial (Tas_lock.make ~n:3) ~order:[| 0; 1; 2 |] in
  let enc = Codec.encode o in
  Alcotest.check_raises "process count mismatch"
    (Invalid_argument "Codec.decode: process count mismatch") (fun () ->
      ignore (Codec.decode (Tas_lock.make ~n:4) enc))

let suite =
  ( "encoder",
    [
      Alcotest.test_case "bit stream round trip" `Quick test_bits_roundtrip_bits;
      Alcotest.test_case "gamma code lengths" `Quick test_gamma_known_lengths;
      Alcotest.test_case "gamma rejects non-positive" `Quick test_gamma_rejects_nonpositive;
      Alcotest.test_case "reading past the end" `Quick test_read_past_end;
      QCheck_alcotest.to_alcotest prop_gamma_roundtrip;
      QCheck_alcotest.to_alcotest prop_gamma_sequence_roundtrip;
      Alcotest.test_case "codec: serial executions round trip" `Quick test_codec_serial_roundtrip;
      Alcotest.test_case "codec: contended executions round trip" `Quick test_codec_contended_roundtrip;
      Alcotest.test_case "decoder recovers the permutation" `Quick test_decoder_recovers_permutation;
      Alcotest.test_case "distinct orders, distinct encodings" `Quick
        test_distinct_orders_give_distinct_encodings;
      Alcotest.test_case "bits exceed the entropy floor" `Quick test_bits_exceed_entropy;
      Alcotest.test_case "decode rejects wrong n" `Quick test_decode_rejects_wrong_n;
      Alcotest.test_case "decode rejects an inflated run length" `Quick
        test_decode_rejects_inflated_run;
    ] )
